"""DLSA exploration stage (paper Sec. V-C2).

Stage 2 pins the best LFA found by stage 1 and anneals over the DRAM-load-
and-store attributes: the DRAM Tensor Order and each tensor's free Living
Duration endpoint (``Start`` for loads — how early to prefetch; ``End`` for
stores — how late the drain may finish).  Tensors are selected for mutation
with probability proportional to their size, since large tensors dominate
both bandwidth and buffer pressure.

Moves are proposed as symbolic :class:`~repro.notation.dlsa.DLSAMove`
records and scored in speculative batches through
``PlanEvaluationContext.evaluate_moves`` (``REPRO_DLSA_BATCH`` candidates
per window): each window is screened by the exact deadlock criterion and,
when ``REPRO_ROOFLINE_PREFILTER`` is on, by the conservative roofline cost
bound, so only the rare surviving candidates pay for a full co-simulation.
The walk is bit-identical for any batch size and with the pre-filter on or
off; the legacy one-candidate operators remain as thin wrappers over the
proposers (same RNG draws, same candidates).
"""

from __future__ import annotations

import math
import random
import warnings
from bisect import bisect
from dataclasses import dataclass

from repro.core.config import SoMaConfig
from repro.core.knobs import read_int
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.core.lfa_stage import canonical_graph
from repro.core.result import EvaluationResult, StageResult
from repro.core.roofline import prefilter_enabled
from repro.core.sa import SimulatedAnnealing
from repro.hardware.accelerator import AcceleratorConfig
from repro.notation.dlsa import DLSA, DLSAMove
from repro.notation.encoding import ScheduleEncoding
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa_cached
from repro.notation.plan import ComputePlan
from repro.workloads.graph import WorkloadGraph

_DEFAULT_BATCH = 32


def dlsa_batch_size() -> int:
    """Speculation window of the DLSA move engine (``REPRO_DLSA_BATCH``).

    Resolved through the knob registry, so an unparsable value emits the
    same ``RuntimeWarning`` as the ``REPRO_*_CACHE``/``REPRO_WORKERS`` knobs
    instead of being silently coerced; a non-positive window is equally a
    typo (the engine needs at least one candidate per step) and warns too.
    """
    value = read_int(
        "REPRO_DLSA_BATCH", f"using the default window of {_DEFAULT_BATCH}"
    )
    if value is None:
        return _DEFAULT_BATCH
    if value < 1:
        warnings.warn(
            f"ignoring non-positive REPRO_DLSA_BATCH={value} (the move engine "
            f"needs at least one candidate per step); using the default "
            f"window of {_DEFAULT_BATCH}",
            RuntimeWarning,
            stacklevel=2,
        )
        return _DEFAULT_BATCH
    return value


# ------------------------------------------------------------------- operators
def _pick_tensor(plan: ComputePlan, rng: random.Random) -> int:
    """Pick a DRAM tensor id with probability proportional to its size.

    Replicates ``rng.choices(range(n), weights, k=1)`` exactly — one uniform
    draw bisected into the cached cumulative weights — without rebuilding
    the prefix sum on every proposal.
    """
    cum_weights = plan.tensor_weight_cumsum
    n = len(cum_weights)
    return bisect(cum_weights, rng.random() * cum_weights[-1], 0, n - 1)


def propose_order_move(plan: ComputePlan, dlsa: DLSA, rng: random.Random) -> DLSAMove | None:
    """Propose moving one DRAM tensor to another position of the order."""
    if len(dlsa.order) < 2:
        return None
    tid = _pick_tensor(plan, rng)
    current = dlsa.order.index(tid)
    new_position = rng.randrange(len(dlsa.order))
    if new_position == current:
        return None
    return DLSAMove(kind="order", tid=tid, source=current, position=new_position)


def propose_living_move(plan: ComputePlan, dlsa: DLSA, rng: random.Random) -> DLSAMove | None:
    """Propose changing the free Living Duration endpoint of one tensor."""
    tid = _pick_tensor(plan, rng)
    is_load, _num_bytes, first_use, _last_use = plan.tensor_arrays
    start, end = dlsa.living[tid]
    if is_load[tid]:
        if first_use[tid] == 0:
            return None
        new_start = rng.randint(0, first_use[tid])
        if new_start == start:
            return None
        return DLSAMove(kind="living", tid=tid, span=(new_start, end))
    latest = plan.num_tiles  # one past the final tile: no deadline at all
    earliest = first_use[tid] + 1  # the producing tile
    if latest <= earliest:
        return None
    new_end = rng.randint(earliest, latest)
    if new_end == end:
        return None
    return DLSAMove(kind="living", tid=tid, span=(start, new_end))


DLSA_PROPOSERS = (propose_order_move, propose_living_move)


def propose_dlsa_move(plan: ComputePlan, dlsa: DLSA, rng: random.Random) -> DLSAMove | None:
    """One annealing proposal: try both operators in random order."""
    proposers = list(DLSA_PROPOSERS)
    rng.shuffle(proposers)
    for proposer in proposers:
        move = proposer(plan, dlsa, rng)
        if move is not None:
            return move
    return None


def op_change_tensor_order(plan: ComputePlan, dlsa: DLSA, rng: random.Random) -> DLSA | None:
    """Move one DRAM tensor to another position of the DRAM Tensor Order."""
    move = propose_order_move(plan, dlsa, rng)
    return None if move is None else move.apply(dlsa)


def op_change_living_duration(plan: ComputePlan, dlsa: DLSA, rng: random.Random) -> DLSA | None:
    """Change the free Living Duration endpoint of one DRAM tensor."""
    move = propose_living_move(plan, dlsa, rng)
    return None if move is None else move.apply(dlsa)


DLSA_OPERATORS = (op_change_tensor_order, op_change_living_duration)


# ----------------------------------------------------------------------- stage
@dataclass(frozen=True)
class DLSAStageOutcome:
    """Best DLSA scheme of one stage-2 run."""

    stage_result: StageResult


class DLSAStage:
    """Stage 2 of the SoMa search."""

    def __init__(self, evaluator: ScheduleEvaluator, config: SoMaConfig) -> None:
        self._evaluator = evaluator
        self._config = config
        self._annealer = SimulatedAnnealing(config.dlsa_sa)

    def explore(
        self,
        lfa: LFA,
        plan: ComputePlan,
        initial_dlsa: DLSA,
        buffer_budget_bytes: int,
        rng: random.Random,
    ) -> DLSAStageOutcome:
        """Run stage 2 from the stage-1 scheme (LFA fixed, DLSA annealed)."""
        # One evaluation context serves the whole run: stage 2 keeps the plan
        # fixed, so every annealing step hits the incremental fast path.
        context = self._evaluator.context(plan)
        budget = buffer_budget_bytes
        bound_cost_fn = self._bound_cost_fn(context, budget) if prefilter_enabled() else None

        def batch_eval(base, moves, thresholds):
            results = context.evaluate_moves(
                base, moves, budget, thresholds=thresholds, bound_cost_fn=bound_cost_fn
            )
            return [
                math.inf if result is None else self._penalised_cost(result, budget)
                for result in results
            ]

        outcome = self._annealer.run_batched(
            initial_state=initial_dlsa,
            cost_fn=lambda dlsa: self._penalised_cost(
                context.evaluate(dlsa, budget), budget
            ),
            propose_fn=lambda dlsa, move_rng: propose_dlsa_move(plan, dlsa, move_rng),
            apply_fn=lambda dlsa, move: move.apply(dlsa),
            batch_eval_fn=batch_eval,
            rng=rng,
            units=plan.num_dram_tensors,
            batch_size=dlsa_batch_size(),
        )
        evaluation = context.evaluate(outcome.best_state, budget)
        stage_result = StageResult(
            encoding=ScheduleEncoding(lfa=lfa, dlsa=outcome.best_state),
            evaluation=evaluation,
            cost=outcome.best_cost,
            iterations=outcome.iterations,
            accepted_moves=outcome.accepted_moves,
        )
        return DLSAStageOutcome(stage_result=stage_result)

    def cost(self, plan: ComputePlan, dlsa: DLSA, buffer_budget_bytes: int) -> float:
        """Stage-2 cost: the objective with a soft buffer-overflow penalty."""
        result = self._evaluator.evaluate(plan, dlsa, buffer_budget_bytes)
        return self._penalised_cost(result, buffer_budget_bytes)

    # ---------------------------------------------------------------- internal
    def _penalised_cost(self, result: EvaluationResult, budget: int) -> float:
        if not math.isfinite(result.latency_s) or result.latency_s <= 0:
            return math.inf
        cost = self._config.objective(result.energy_j, result.latency_s)
        if result.max_buffer_bytes > budget:
            excess = (result.max_buffer_bytes - budget) / budget
            cost *= 1.0 + self._config.buffer_overflow_penalty * excess
        return cost

    def _bound_cost_fn(self, context, budget: int):
        """Map the roofline latency bound to a lower bound on the move cost.

        Mirrors :meth:`_penalised_cost` with the exact energy and exact peak
        buffer (both independent of the simulation) and the latency *bound*:
        the objective is nondecreasing in latency (``delay_exponent >= 0``),
        so the result never exceeds the candidate's true cost.
        """
        energy_j = context.core_energy_j + context.dram_energy_j
        config = self._config
        penalty = config.buffer_overflow_penalty

        def bound_cost(bound_latency_s: float, max_buffer_bytes: int) -> float:
            if not math.isfinite(bound_latency_s) or bound_latency_s <= 0:
                return 0.0
            cost = config.objective(energy_j, bound_latency_s)
            if max_buffer_bytes > budget:
                excess = (max_buffer_bytes - budget) / budget
                cost *= 1.0 + penalty * excess
            return cost

        return bound_cost

    def _neighbor(self, plan: ComputePlan, dlsa: DLSA, rng: random.Random) -> DLSA | None:
        """Serial one-candidate neighbour (kept for tests and reference runs)."""
        move = propose_dlsa_move(plan, dlsa, rng)
        return None if move is None else move.apply(dlsa)


# ------------------------------------------------------- pipelined stage tasks
_STAGE2_EVALUATORS: dict = {}
_STAGE2_CACHE_LIMIT = 8


@dataclass(frozen=True)
class Stage2Task:
    """One pipelined stage-2 refinement of a stage-1 incumbent.

    Like :class:`~repro.core.lfa_stage.Stage1Task`, a pure function of its
    fields: the worker re-parses the LFA (hitting its warm per-graph caches)
    and anneals the DLSA from the double-buffer strategy under its own
    derived seed, so in-process and pool execution agree bit for bit.
    """

    accelerator: AcceleratorConfig
    config: SoMaConfig
    graph: WorkloadGraph
    lfa: LFA
    budget: int
    seed: int


def run_stage2_task(task: Stage2Task) -> DLSAStageOutcome:
    """Module-level (hence picklable) runner for :class:`Stage2Task`."""
    graph = canonical_graph(task.graph)
    evaluator = _STAGE2_EVALUATORS.get(task.accelerator)
    if evaluator is None:
        if len(_STAGE2_EVALUATORS) >= _STAGE2_CACHE_LIMIT:
            _STAGE2_EVALUATORS.clear()
        evaluator = ScheduleEvaluator(task.accelerator)
        _STAGE2_EVALUATORS[task.accelerator] = evaluator
    plan = parse_lfa_cached(graph, task.lfa)
    stage = DLSAStage(evaluator, task.config)
    return stage.explore(
        lfa=task.lfa,
        plan=plan,
        initial_dlsa=double_buffer_dlsa(plan),
        buffer_budget_bytes=task.budget,
        rng=random.Random(task.seed),
    )
