"""DLSA exploration stage (paper Sec. V-C2).

Stage 2 pins the best LFA found by stage 1 and anneals over the DRAM-load-
and-store attributes: the DRAM Tensor Order and each tensor's free Living
Duration endpoint (``Start`` for loads — how early to prefetch; ``End`` for
stores — how late the drain may finish).  Tensors are selected for mutation
with probability proportional to their size, since large tensors dominate
both bandwidth and buffer pressure.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.config import SoMaConfig
from repro.core.evaluator import ScheduleEvaluator
from repro.core.result import EvaluationResult, StageResult
from repro.core.sa import SimulatedAnnealing
from repro.notation.dlsa import DLSA
from repro.notation.encoding import ScheduleEncoding
from repro.notation.lfa import LFA
from repro.notation.plan import ComputePlan


# ------------------------------------------------------------------- operators
def _pick_tensor(plan: ComputePlan, rng: random.Random) -> int:
    """Pick a DRAM tensor id with probability proportional to its size.

    The weights only depend on the plan, so they are computed once per plan
    (``ComputePlan.tensor_size_weights``) instead of on every move proposal.
    """
    weights = plan.tensor_size_weights
    return rng.choices(range(len(weights)), weights=weights, k=1)[0]


def op_change_tensor_order(plan: ComputePlan, dlsa: DLSA, rng: random.Random) -> DLSA | None:
    """Move one DRAM tensor to another position of the DRAM Tensor Order."""
    if len(dlsa.order) < 2:
        return None
    tid = _pick_tensor(plan, rng)
    order = list(dlsa.order)
    current = order.index(tid)
    new_position = rng.randrange(len(order))
    if new_position == current:
        return None
    order.pop(current)
    order.insert(new_position, tid)
    return DLSA(order=tuple(order), living=dict(dlsa.living))


def op_change_living_duration(plan: ComputePlan, dlsa: DLSA, rng: random.Random) -> DLSA | None:
    """Change the free Living Duration endpoint of one DRAM tensor."""
    tid = _pick_tensor(plan, rng)
    tensor = plan.tensor(tid)
    living = dict(dlsa.living)
    start, end = living[tid]
    if tensor.is_load:
        if tensor.first_use == 0:
            return None
        new_start = rng.randint(0, tensor.first_use)
        if new_start == start:
            return None
        living[tid] = (new_start, end)
    else:
        latest = plan.num_tiles  # one past the final tile: no deadline at all
        earliest = tensor.produce_tile + 1
        if latest <= earliest:
            return None
        new_end = rng.randint(earliest, latest)
        if new_end == end:
            return None
        living[tid] = (start, new_end)
    return DLSA(order=dlsa.order, living=living)


DLSA_OPERATORS = (op_change_tensor_order, op_change_living_duration)


# ----------------------------------------------------------------------- stage
@dataclass(frozen=True)
class DLSAStageOutcome:
    """Best DLSA scheme of one stage-2 run."""

    stage_result: StageResult


class DLSAStage:
    """Stage 2 of the SoMa search."""

    def __init__(self, evaluator: ScheduleEvaluator, config: SoMaConfig) -> None:
        self._evaluator = evaluator
        self._config = config
        self._annealer = SimulatedAnnealing(config.dlsa_sa)

    def explore(
        self,
        lfa: LFA,
        plan: ComputePlan,
        initial_dlsa: DLSA,
        buffer_budget_bytes: int,
        rng: random.Random,
    ) -> DLSAStageOutcome:
        """Run stage 2 from the stage-1 scheme (LFA fixed, DLSA annealed)."""
        # One evaluation context serves the whole run: stage 2 keeps the plan
        # fixed, so every annealing step hits the incremental fast path.
        context = self._evaluator.context(plan)
        outcome = self._annealer.run(
            initial_state=initial_dlsa,
            cost_fn=lambda dlsa: self._penalised_cost(
                context.evaluate(dlsa, buffer_budget_bytes), buffer_budget_bytes
            ),
            neighbor_fn=lambda dlsa, move_rng: self._neighbor(plan, dlsa, move_rng),
            rng=rng,
            units=plan.num_dram_tensors,
        )
        evaluation = context.evaluate(outcome.best_state, buffer_budget_bytes)
        stage_result = StageResult(
            encoding=ScheduleEncoding(lfa=lfa, dlsa=outcome.best_state),
            evaluation=evaluation,
            cost=outcome.best_cost,
            iterations=outcome.iterations,
            accepted_moves=outcome.accepted_moves,
        )
        return DLSAStageOutcome(stage_result=stage_result)

    def cost(self, plan: ComputePlan, dlsa: DLSA, buffer_budget_bytes: int) -> float:
        """Stage-2 cost: the objective with a soft buffer-overflow penalty."""
        result = self._evaluator.evaluate(plan, dlsa, buffer_budget_bytes)
        return self._penalised_cost(result, buffer_budget_bytes)

    # ---------------------------------------------------------------- internal
    def _penalised_cost(self, result: EvaluationResult, budget: int) -> float:
        if not math.isfinite(result.latency_s) or result.latency_s <= 0:
            return math.inf
        cost = self._config.objective(result.energy_j, result.latency_s)
        if result.max_buffer_bytes > budget:
            excess = (result.max_buffer_bytes - budget) / budget
            cost *= 1.0 + self._config.buffer_overflow_penalty * excess
        return cost

    def _neighbor(self, plan: ComputePlan, dlsa: DLSA, rng: random.Random) -> DLSA | None:
        operators = list(DLSA_OPERATORS)
        rng.shuffle(operators)
        for operator in operators:
            candidate = operator(plan, dlsa, rng)
            if candidate is not None:
                return candidate
        return None
