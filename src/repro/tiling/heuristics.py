"""Heuristic Tiling Numbers based on core-array parallelism requirements.

Cocco (and many earlier frameworks) pick each group's Tiling Number from the
Kernel-Channel parallelism requirement of the core array: layers with more
output channels get more tiles so every tile still fills the parallel lanes
(Sec. VII-B1).  SoMa uses the same rule only for its *initial* solution and
then lets the annealer change it freely.
"""

from __future__ import annotations

from repro.workloads.graph import WorkloadGraph


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= ``value`` (at least 1)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


def kc_parallelism_tiling_number(
    graph: WorkloadGraph,
    layers: list[str],
    kc_parallel_lanes: int,
    minimum: int = 8,
) -> int:
    """Tiling Number the KC-parallelism heuristic assigns to a layer group.

    The rule mirrors the behaviour the paper attributes to Cocco: the group
    is split so that every tile's output-channel extent roughly matches the
    kernel-channel lanes of the core array, with a floor of ``minimum`` tiles
    so early layers (few channels, huge fmaps) still stream through modest
    buffers.  The result is conservative (too many tiles) for deep layers —
    exactly the behaviour SoMa improves on.
    """
    if not layers:
        raise ValueError("layer group must not be empty")
    pe_layers = [graph.layer(name) for name in layers if graph.layer(name).op_type.uses_pe_array]
    if not pe_layers:
        return 1
    max_channels = max(layer.out_channels for layer in pe_layers)
    channel_driven = -(-max_channels // kc_parallel_lanes)
    per_sample = next_power_of_two(max(minimum, channel_driven))
    # Larger batches are streamed sample group by sample group, so the tile
    # count scales with the batch (this keeps per-tile buffer pressure flat).
    return per_sample * next_power_of_two(graph.batch)
