"""Tile partitioning with backtracking halo overlap (paper Sec. IV-A1).

Each Fine-grained Layer-fusion Group (FLG) carries a Tiling Number ``T``; the
layers of the FLG are processed tile-by-tile in an interleaved fashion.  The
partitioning heuristic splits the batch dimension first (no halo cost), then
output height and width, and enlarges the tiles of intermediate layers so
that every consumer tile finds its whole input region inside the matching
producer tile (the recomputation-based halo handling of Cocco / DeFiNES).
"""

from repro.tiling.halo import propagate_required_extent, required_input_extent
from repro.tiling.partition import split_counts, tile_flg
from repro.tiling.tile import LayerTiling, TileShape

__all__ = [
    "LayerTiling",
    "TileShape",
    "propagate_required_extent",
    "required_input_extent",
    "split_counts",
    "tile_flg",
]
