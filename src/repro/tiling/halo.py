"""Receptive-field (halo) arithmetic for fused-layer tiling.

When several spatial-window layers are fused and processed tile by tile, a
consumer tile needs a slightly larger input region than its "fair share" of
the producer output.  Following Cocco and DeFiNES, the producer tiles are
enlarged (recomputation of the overlapping rows/columns) so that consumer
tile ``i`` depends only on producer tile ``i``.  The routines here compute
how far that enlargement backtracks through a chain of fused layers.
"""

from __future__ import annotations

from repro.workloads.layer import Layer


def required_input_extent(layer: Layer, out_extent_h: int, out_extent_w: int) -> tuple[int, int]:
    """Input rows/columns needed to produce ``out_extent_h x out_extent_w`` outputs.

    For sliding-window operators this is the usual ``(o - 1) * stride + kernel``
    formula, clamped to the layer's real input size; for pointwise operators
    the extent passes through unchanged (clamped to the input size, which can
    matter for layers that change the sequence length such as attention
    matmuls).
    """
    if out_extent_h <= 0 or out_extent_w <= 0:
        raise ValueError("output extents must be positive")
    if layer.op_type.has_spatial_window:
        in_h = (out_extent_h - 1) * layer.stride_h + layer.kernel_h
        in_w = (out_extent_w - 1) * layer.stride_w + layer.kernel_w
    else:
        in_h, in_w = out_extent_h, out_extent_w
    return (min(in_h, layer.in_height), min(in_w, layer.in_width))


def propagate_required_extent(
    producer: Layer, consumer: Layer, consumer_out_h: int, consumer_out_w: int
) -> tuple[int, int]:
    """Producer output extent required by a consumer tile of the given size.

    The consumer's input is the producer's output, so the producer must emit
    at least the consumer's required input region, clamped to the producer's
    actual output size.
    """
    needed_h, needed_w = required_input_extent(consumer, consumer_out_h, consumer_out_w)
    return (min(needed_h, producer.out_height), min(needed_w, producer.out_width))
