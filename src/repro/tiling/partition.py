"""Splitting an FLG into tiles (paper Sec. IV-A1 heuristic).

Given a Tiling Number ``T``, the partitioner chooses split counts along
(batch, output height, output width) — batch first because it has no halo
cost, then height and width kept as square as possible — and derives each
layer's enlarged tile through the reverse-topological halo propagation of
:mod:`repro.tiling.halo`.  The channel dimension is never split, so that
fused consumers can read all channels (Sec. IV-A1).
"""

from __future__ import annotations

import math
import weakref

from repro.core.caching import LRUCache, per_graph_lru, per_graph_stats
from repro.errors import WorkloadError
from repro.tiling.halo import propagate_required_extent, required_input_extent
from repro.tiling.tile import LayerTiling, TileShape, tile_macs, tile_vector_ops
from repro.workloads.graph import WorkloadGraph
from repro.workloads.layer import Layer


def split_counts(batch: int, height: int, width: int, num_tiles: int) -> tuple[int, int, int]:
    """Choose split factors (batch, height, width) whose product is <= ``num_tiles``.

    The batch dimension is exhausted first, then height and width are split
    alternately (height first) to keep tiles as square as possible.  The
    returned product can be smaller than ``num_tiles`` when the tensor simply
    does not have enough extent to split further.
    """
    if num_tiles <= 0:
        raise WorkloadError("num_tiles must be positive")
    b_split = min(batch, num_tiles)
    remaining = max(1, num_tiles // b_split)

    h_split, w_split = 1, 1
    split_height_next = True
    while remaining > 1:
        if split_height_next and h_split * 2 <= height:
            h_split *= 2
            remaining //= 2
        elif w_split * 2 <= width:
            w_split *= 2
            remaining //= 2
        elif h_split * 2 <= height:
            h_split *= 2
            remaining //= 2
        else:
            break
        split_height_next = not split_height_next
    return (b_split, h_split, w_split)


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _layer_tiling(
    layer: Layer,
    batch_split: int,
    tile_h: int,
    tile_w: int,
    num_tiles: int,
) -> LayerTiling:
    """Build the :class:`LayerTiling` for one layer given its tile extents."""
    tile_batch = _ceil_div(layer.batch, batch_split)
    out_tile = TileShape(
        batch=tile_batch, channels=layer.out_channels, height=tile_h, width=tile_w
    )
    in_h, in_w = required_input_extent(layer, tile_h, tile_w)
    in_tile = TileShape(
        batch=tile_batch, channels=layer.in_channels, height=in_h, width=in_w
    )
    return LayerTiling(
        layer_name=layer.name,
        num_tiles=num_tiles,
        out_tile=out_tile,
        in_tile=in_tile,
        ofmap_tile_bytes=out_tile.elements * layer.bytes_per_element,
        ifmap_tile_bytes=in_tile.elements * layer.bytes_per_element,
        macs_per_tile=tile_macs(layer, out_tile),
        vector_ops_per_tile=tile_vector_ops(layer, out_tile),
        weight_bytes=layer.weight_bytes,
    )


# Memo of FLG tilings per workload graph.  The annealer re-parses thousands of
# encodings whose FLGs mostly repeat, and LayerTiling objects are immutable, so
# sharing them across parses is both safe and a large speed-up.  The per-graph
# memo is a bounded LRU (``REPRO_TILING_CACHE``) keyed by (FLG layers, Tiling
# Number) and dropped when the graph mutates, so long sweeps cannot grow it
# without limit and mutation cannot serve stale tilings.
_TILING_MEMO: "weakref.WeakKeyDictionary[WorkloadGraph, tuple[int, LRUCache]]" = (
    weakref.WeakKeyDictionary()
)


def tile_flg(
    graph: WorkloadGraph, flg_layers: list[str], tiling_number: int
) -> dict[str, LayerTiling]:
    """Partition every layer of an FLG into tiles.

    The split counts are chosen on the FLG's *last* layer (its output
    resolution is the finest constraint) and the required extents are
    propagated backwards through the FLG so intermediate layers carry the
    accumulated halo.  Only *tiled* dependencies propagate halo; untiled
    dependencies (attention key/value operands) are validated elsewhere.
    """
    memo = per_graph_lru(_TILING_MEMO, graph, "TILING", 4096)
    memo_key = (tuple(flg_layers), tiling_number)
    cached = memo.get(memo_key)
    if cached is not None:
        return dict(cached)
    result = _tile_flg_uncached(graph, flg_layers, tiling_number)
    memo.put(memo_key, result)
    return dict(result)


def tiling_cache_stats(graph: WorkloadGraph) -> dict:
    """Hit/miss statistics of the per-graph tiling memo (for ``--cache-stats``)."""
    return per_graph_stats(_TILING_MEMO, graph)


def _tile_flg_uncached(
    graph: WorkloadGraph, flg_layers: list[str], tiling_number: int
) -> dict[str, LayerTiling]:
    if not flg_layers:
        raise WorkloadError("an FLG must contain at least one layer")
    if tiling_number <= 0:
        raise WorkloadError("tiling_number must be positive")

    members = set(flg_layers)
    last_layer = graph.layer(flg_layers[-1])
    batch_split, h_split, w_split = split_counts(
        last_layer.batch, last_layer.out_height, last_layer.out_width, tiling_number
    )
    effective_tiles = batch_split * h_split * w_split

    # Required output extents, walked from the back of the FLG to the front so
    # every producer sees its consumers' (already enlarged) requirements.
    required: dict[str, tuple[int, int]] = {}
    for name in reversed(flg_layers):
        layer = graph.layer(name)
        base_h = _ceil_div(layer.out_height, h_split)
        base_w = _ceil_div(layer.out_width, w_split)
        best_h, best_w = base_h, base_w
        for consumer_name in graph.successors(name):
            if consumer_name not in members:
                continue
            if not graph.dependency(name, consumer_name).tiled:
                continue
            consumer = graph.layer(consumer_name)
            cons_h, cons_w = required[consumer_name]
            need_h, need_w = propagate_required_extent(layer, consumer, cons_h, cons_w)
            best_h = max(best_h, need_h)
            best_w = max(best_w, need_w)
        required[name] = (min(best_h, layer.out_height), min(best_w, layer.out_width))

    tilings: dict[str, LayerTiling] = {}
    for name in flg_layers:
        layer = graph.layer(name)
        tile_h, tile_w = required[name]
        tilings[name] = _layer_tiling(layer, batch_split, tile_h, tile_w, effective_tiles)
    return tilings


def effective_tiling_number(
    graph: WorkloadGraph, flg_layers: list[str], tiling_number: int
) -> int:
    """Number of tiles actually produced for an FLG (may be < the requested T)."""
    last_layer = graph.layer(flg_layers[-1])
    batch_split, h_split, w_split = split_counts(
        last_layer.batch, last_layer.out_height, last_layer.out_width, tiling_number
    )
    return batch_split * h_split * w_split


def overlap_overhead_ratio(graph: WorkloadGraph, tilings: dict[str, LayerTiling]) -> float:
    """Ratio of extra MACs introduced by halo recomputation (0.0 means none)."""
    nominal = sum(graph.layer(name).macs for name in tilings)
    actual = sum(t.total_macs for t in tilings.values())
    if nominal == 0:
        return 0.0
    return max(0.0, actual / nominal - 1.0)


def max_tiling_number(graph: WorkloadGraph, flg_layers: list[str]) -> int:
    """Upper bound on a useful Tiling Number for this FLG.

    Beyond this value the partitioner cannot split any further (every
    dimension is already at extent one), so search operators should not
    propose larger numbers.
    """
    last_layer = graph.layer(flg_layers[-1])
    return max(
        1,
        2 ** int(
            math.floor(
                math.log2(
                    max(1, last_layer.batch * last_layer.out_height * last_layer.out_width)
                )
            )
        ),
    )
