"""Tile-level data structures produced by the partitioner."""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.layer import Layer, OpType


@dataclass(frozen=True)
class TileShape:
    """Output-tile dimensions of one layer (per tile, halo included)."""

    batch: int
    channels: int
    height: int
    width: int

    @property
    def elements(self) -> int:
        return self.batch * self.channels * self.height * self.width


@dataclass(frozen=True)
class LayerTiling:
    """How one layer is split into tiles inside its FLG.

    All per-tile quantities refer to a single (worst-case) tile: because of
    the halo enlargement every tile is costed with the same enlarged shape,
    which is exactly the "backtracking halo overlap cost" the paper charges
    to fine-grained tilings.
    """

    layer_name: str
    num_tiles: int
    out_tile: TileShape
    in_tile: TileShape
    ofmap_tile_bytes: int
    ifmap_tile_bytes: int
    macs_per_tile: int
    vector_ops_per_tile: int
    weight_bytes: int

    @property
    def total_macs(self) -> int:
        """MACs summed over all tiles (>= the layer's nominal MACs)."""
        return self.num_tiles * self.macs_per_tile

    @property
    def total_vector_ops(self) -> int:
        """Vector ops summed over all tiles."""
        return self.num_tiles * self.vector_ops_per_tile

    @property
    def ops_per_tile(self) -> int:
        """Total operation count of one tile (2 ops per MAC)."""
        return 2 * self.macs_per_tile + self.vector_ops_per_tile


def tile_macs(layer: Layer, out_tile: TileShape) -> int:
    """MAC count of one tile of ``layer`` with the given output-tile shape."""
    if not layer.op_type.uses_pe_array:
        return 0
    if layer.op_type in (OpType.CONV, OpType.GEMM):
        per_output = layer.kernel_h * layer.kernel_w * layer.in_channels // layer.groups
        return out_tile.elements * per_output
    if layer.op_type is OpType.DWCONV:
        return out_tile.elements * layer.kernel_h * layer.kernel_w
    return out_tile.elements * layer.in_channels


def tile_vector_ops(layer: Layer, out_tile: TileShape) -> int:
    """Vector-unit operation count of one tile of ``layer``."""
    if layer.op_type.uses_pe_array:
        return 0
    if layer.op_type is OpType.POOL:
        return out_tile.elements * layer.kernel_h * layer.kernel_w
    if layer.op_type in (OpType.NORM, OpType.SOFTMAX):
        return 4 * out_tile.elements
    return out_tile.elements
