"""SoMa reproduction: DRAM communication scheduling for DNN accelerators.

This library reproduces "SoMa: Identifying, Exploring, and Understanding the
DRAM Communication Scheduling Space for DNN Accelerators" (HPCA 2025): the
Tensor-centric Notation, the two-stage simulated-annealing framework with a
Buffer Allocator, the accurate evaluator, the Cocco baseline, the workload
zoo and the analysis/benchmark harnesses that regenerate the paper's figures.

Quickstart
----------
>>> from repro import SoMaScheduler, SoMaConfig, build_workload, edge_accelerator
>>> accelerator = edge_accelerator()
>>> workload = build_workload("resnet50", batch=1)
>>> result = SoMaScheduler(accelerator, SoMaConfig.fast()).schedule(workload)
>>> result.evaluation.latency_s > 0
True
"""

from repro.baselines import CoccoScheduler, UnfusedScheduler
from repro.core import (
    CoreArrayMapper,
    EvaluationResult,
    SAParams,
    ScheduleEvaluator,
    SoMaConfig,
    SoMaResult,
    SoMaScheduler,
    StageResult,
)
from repro.hardware import (
    AcceleratorConfig,
    CoreArrayConfig,
    EnergyModel,
    MemoryConfig,
    cloud_accelerator,
    edge_accelerator,
)
from repro.notation import DLSA, LFA, DRAMTensor, ScheduleEncoding, TensorKind, parse_lfa
from repro.workloads import Layer, OpType, WorkloadGraph, available_workloads, build_workload

__version__ = "1.0.0"

__all__ = [
    "AcceleratorConfig",
    "CoccoScheduler",
    "CoreArrayConfig",
    "CoreArrayMapper",
    "DLSA",
    "DRAMTensor",
    "EnergyModel",
    "EvaluationResult",
    "LFA",
    "Layer",
    "MemoryConfig",
    "OpType",
    "SAParams",
    "ScheduleEncoding",
    "ScheduleEvaluator",
    "SoMaConfig",
    "SoMaResult",
    "SoMaScheduler",
    "StageResult",
    "TensorKind",
    "UnfusedScheduler",
    "WorkloadGraph",
    "available_workloads",
    "build_workload",
    "cloud_accelerator",
    "edge_accelerator",
    "parse_lfa",
    "__version__",
]
