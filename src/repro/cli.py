"""Command-line interface: ``python -m repro <command> ...``.

The CLI wraps the library's main entry points so the paper's experiments can
be driven without writing Python:

* ``workloads``  - list the model zoo with basic statistics;
* ``schedule``   - run SoMa on one workload and print the report (optionally
  dumping the IR and the instruction stream);
* ``compare``    - run Cocco and SoMa on one workload and print the Fig.-6
  style comparison;
* ``overall``    - run the overall experiment grid and write ``overall.csv``
  and ``stats.log``;
* ``dse``        - run a bandwidth x buffer sweep and write ``dse.csv``;
* ``serve``      - run the batched scheduling service (JSON lines on
  stdin/stdout, or HTTP with ``--http PORT``), with a bounded
  deadline-aware admission queue (``--queue-size``) and optional memo
  persistence across restarts (``--memo-path``);
* ``lint``       - run the repo's static invariant checkers (determinism,
  knob hygiene, pool-task purity, lock discipline, fingerprint coverage)
  with inline suppressions and a committed baseline.

``--workers N`` (or the ``REPRO_WORKERS`` environment variable) fans
independent cells/design points across processes with results identical to a
serial run; ``schedule --restarts K`` explores K independent SA chains with
derived seeds and keeps the best scheme.  The service resolves its worker
count through ``REPRO_SERVE_WORKERS`` (then ``REPRO_WORKERS``) and keeps a
persistent pool whose caches stay warm across requests.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.comparison import compare_workload
from repro.baselines.cocco import CoccoScheduler
from repro.compiler.codegen import lower_result
from repro.compiler.ir import generate_ir
from repro.core.caching import collect_search_cache_stats, format_cache_stats
from repro.core.config import SAParams, SoMaConfig
from repro.core.soma import SoMaScheduler
from repro.experiments.overall import ExperimentCell, default_cells, run_overall_experiment
from repro.experiments.parallel import multi_restart_schedule
from repro.experiments.sweep import run_dse_experiment
from repro.hardware.accelerator import cloud_accelerator, edge_accelerator
from repro.workloads.registry import available_workloads, build_workload


def _make_config(args: argparse.Namespace) -> SoMaConfig:
    if getattr(args, "fast", False):
        return SoMaConfig.fast(seed=args.seed)
    return SoMaConfig(
        lfa_sa=SAParams(iterations_per_unit=args.lfa_budget, max_iterations=5000),
        dlsa_sa=SAParams(iterations_per_unit=args.dlsa_budget, max_iterations=6000),
        max_allocator_iterations=args.allocator_iterations,
        seed=args.seed,
    )


def _make_accelerator(args: argparse.Namespace):
    return edge_accelerator() if args.platform == "edge" else cloud_accelerator()


def _workload_kwargs(args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    if getattr(args, "variant", None):
        kwargs["variant"] = args.variant
    if getattr(args, "seq_len", None):
        if args.workload == "gpt2-decode":
            kwargs["context_len"] = args.seq_len
        elif args.workload == "gpt2-prefill":
            kwargs["seq_len"] = args.seq_len
    return kwargs


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    # Only subcommands that actually fan work out accept --workers; adding it
    # everywhere would silently ignore it (e.g. on `compare`).
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="multiprocessing workers for independent cells/chains "
        "(default: the REPRO_WORKERS environment variable, then serial)",
    )


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="resnet50", help="registry name of the workload")
    parser.add_argument("--batch", type=int, default=1)
    parser.add_argument("--platform", choices=["edge", "cloud"], default="edge")
    parser.add_argument("--variant", default=None, help="GPT-2 variant (tiny/small/xl)")
    parser.add_argument("--seq-len", type=int, default=None, help="GPT-2 prompt/context length")
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--fast", action="store_true", help="use a very small search budget")
    parser.add_argument("--lfa-budget", type=float, default=12.0, help="SA iterations per layer")
    parser.add_argument("--dlsa-budget", type=float, default=6.0, help="SA iterations per DRAM tensor")
    parser.add_argument("--allocator-iterations", type=int, default=2)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("workloads", help="list the available workloads")

    schedule = subparsers.add_parser("schedule", help="run SoMa on one workload")
    _add_common_arguments(schedule)
    schedule.add_argument("--ir-out", type=Path, default=None, help="write the IR JSON here")
    schedule.add_argument(
        "--instructions-out", type=Path, default=None, help="write the instruction listing here"
    )
    schedule.add_argument(
        "--restarts",
        type=int,
        default=1,
        help="independent SA chains with derived seeds; the best scheme wins",
    )
    schedule.add_argument(
        "--cache-stats",
        action="store_true",
        help="print hit/miss/size of the search LRUs (parse, segment, "
        "fragment, tiling, plan, result) after the run, plus the rebase row "
        "(offset-indirect assembly: rebase_reuse hits vs rebased_segments "
        "misses) and the speculation row (batched stage-1 moves: committed "
        "hits vs rolled_back misses, split into pool vs in-process "
        "evaluations); the result row samples the currently resident "
        "evaluation contexts",
    )
    _add_workers_argument(schedule)

    compare = subparsers.add_parser("compare", help="compare Cocco and SoMa on one workload")
    _add_common_arguments(compare)

    overall = subparsers.add_parser("overall", help="run the overall experiment grid")
    overall.add_argument("--out-dir", type=Path, default=Path("results"))
    overall.add_argument("--seed", type=int, default=2025)
    overall.add_argument("--fast", action="store_true")
    overall.add_argument("--lfa-budget", type=float, default=12.0)
    overall.add_argument("--dlsa-budget", type=float, default=6.0)
    overall.add_argument("--allocator-iterations", type=int, default=2)
    _add_workers_argument(overall)

    dse = subparsers.add_parser("dse", help="run a DRAM-bandwidth x buffer sweep")
    _add_common_arguments(dse)
    dse.add_argument("--batches", type=int, nargs="+", default=[1])
    dse.add_argument("--bandwidths", type=float, nargs="+", default=[8.0, 16.0, 32.0])
    dse.add_argument("--buffers", type=float, nargs="+", default=[4.0, 8.0, 16.0])
    dse.add_argument("--out-dir", type=Path, default=Path("results"))
    _add_workers_argument(dse)

    serve = subparsers.add_parser("serve", help="run the batched scheduling service")
    serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="serve HTTP on this port instead of JSON lines on stdin/stdout "
        "(0 picks a free port)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="persistent pool workers (default: REPRO_SERVE_WORKERS, then "
        "REPRO_WORKERS, then serial)",
    )
    serve.add_argument(
        "--memo-size",
        type=int,
        default=None,
        help="cross-request result memo capacity "
        "(default: REPRO_SERVE_MEMO_CACHE, then 256; 0 disables)",
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=None,
        help="bounded admission queue capacity; cache misses beyond it are "
        "rejected with provenance 'rejected' (HTTP 429). default: "
        "REPRO_SERVE_QUEUE, then 64; 0 rejects every cache miss",
    )
    serve.add_argument(
        "--memo-path",
        type=Path,
        default=None,
        help="persist the result memo to this JSON file (reloaded on start, "
        "atomically written on shutdown and flushed periodically; default: "
        "REPRO_SERVE_MEMO_PATH, then no persistence)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=None,
        help="re-dispatch budget when a worker process crashes mid-search "
        "(crash failures only, never past the request deadline; default: "
        "REPRO_SERVE_RETRIES, then 1; 0 fails crashed searches immediately)",
    )

    lint = subparsers.add_parser(
        "lint", help="run the repo's static invariant checkers (repro.statics)"
    )
    lint.add_argument(
        "paths",
        type=Path,
        nargs="*",
        default=None,
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="also fail on warnings and on stale baseline entries",
    )
    lint.add_argument(
        "--rules",
        nargs="+",
        default=None,
        metavar="RULE",
        help="subset of rules to run (default: all); see --list-rules",
    )
    lint.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON of accepted findings "
        "(default: lint-baseline.json at the repo root)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline accepting every current finding "
        "(justifications of surviving entries are preserved)",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit the report as JSON on stdout"
    )
    lint.add_argument(
        "--knobs",
        action="store_true",
        help="print the registered REPRO_* knob table and exit",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )

    return parser


# ---------------------------------------------------------------- subcommands
def _cmd_workloads(_args: argparse.Namespace, out) -> int:
    out.write(f"{'name':24s} {'layers':>7s} {'GMACs':>9s} {'weights(MB)':>12s}\n")
    for name in available_workloads():
        graph = build_workload(name, batch=1)
        out.write(
            f"{name:24s} {len(graph):>7d} {graph.total_macs / 1e9:>9.2f} "
            f"{graph.total_weight_bytes / 1e6:>12.2f}\n"
        )
    return 0


def _cmd_schedule(args: argparse.Namespace, out) -> int:
    accelerator = _make_accelerator(args)
    graph = build_workload(args.workload, batch=args.batch, **_workload_kwargs(args))
    config = _make_config(args)
    evaluator = None
    aggregated_stats = None
    if args.restarts != 1:
        # restarts < 1 is rejected by multi_restart_schedule with a clear error
        # instead of silently behaving like a single chain.
        if args.cache_stats:
            # Parent-process LRUs never see worker activity, so each chain
            # ships back the cache-counter delta of its own run and the
            # aggregate covers every chain in every worker process.
            result, aggregated_stats = multi_restart_schedule(
                accelerator,
                graph,
                config=config,
                seed=args.seed,
                restarts=args.restarts,
                workers=args.workers,
                collect_cache_stats=True,
            )
        else:
            result = multi_restart_schedule(
                accelerator,
                graph,
                config=config,
                seed=args.seed,
                restarts=args.restarts,
                workers=args.workers,
            )
    else:
        scheduler = SoMaScheduler(accelerator, config)
        result = scheduler.schedule(graph, seed=args.seed)
        evaluator = scheduler.evaluator
    out.write(result.describe() + "\n")
    out.write(
        f"compute utilisation {result.evaluation.compute_utilization(accelerator):.3f} "
        f"(bound {result.evaluation.theoretical_max_utilization(accelerator):.3f})\n"
    )
    if args.cache_stats:
        if aggregated_stats is not None:
            out.write(
                f"search cache statistics (aggregated over {args.restarts} "
                "restart chains across all worker processes):\n"
            )
            out.write(format_cache_stats(aggregated_stats) + "\n")
        else:
            stats = collect_search_cache_stats(graph, evaluator)
            out.write("search cache statistics:\n")
            out.write(format_cache_stats(stats) + "\n")
    if args.ir_out is not None:
        args.ir_out.write_text(generate_ir(result.plan, result.dlsa).to_json())
        out.write(f"IR written to {args.ir_out}\n")
    if args.instructions_out is not None:
        args.instructions_out.write_text(lower_result(result.plan, result.dlsa).dump())
        out.write(f"instruction stream written to {args.instructions_out}\n")
    return 0


def _cmd_compare(args: argparse.Namespace, out) -> int:
    accelerator = _make_accelerator(args)
    graph = build_workload(args.workload, batch=args.batch, **_workload_kwargs(args))
    config = _make_config(args)
    row = compare_workload(graph, accelerator, config=config, seed=args.seed)
    out.write(f"workload {row.workload} on {row.accelerator}, batch {row.batch}\n")
    for label, evaluation in (
        ("Cocco", row.cocco),
        ("Ours_1", row.soma_stage1),
        ("Ours_2", row.soma_stage2),
    ):
        out.write(f"  {label:7s} {evaluation.describe()}\n")
    out.write(
        f"speedup {row.speedup_total:.2f}x, energy {row.energy_reduction_percent:+.1f}%, "
        f"gap to bound {row.gap_to_bound_percent:.1f}%\n"
    )
    return 0


def _cmd_overall(args: argparse.Namespace, out) -> int:
    config = SoMaConfig.fast(seed=args.seed) if args.fast else SoMaConfig(
        lfa_sa=SAParams(iterations_per_unit=args.lfa_budget, max_iterations=5000),
        dlsa_sa=SAParams(iterations_per_unit=args.dlsa_budget, max_iterations=6000),
        max_allocator_iterations=args.allocator_iterations,
        seed=args.seed,
    )
    experiment = run_overall_experiment(
        cells=default_cells(), config=config, seed=args.seed,
        progress=lambda message: out.write(message + "\n"),
        workers=args.workers,
    )
    args.out_dir.mkdir(parents=True, exist_ok=True)
    (args.out_dir / "overall.csv").write_text(experiment.to_csv() + "\n")
    (args.out_dir / "stats.log").write_text(experiment.stats_log() + "\n")
    out.write(experiment.stats_log() + "\n")
    out.write(f"results written to {args.out_dir}/overall.csv and {args.out_dir}/stats.log\n")
    return 0


def _cmd_dse(args: argparse.Namespace, out) -> int:
    config = _make_config(args)
    experiment = run_dse_experiment(
        workload=args.workload,
        batches=args.batches,
        dram_bandwidths_gb_s=args.bandwidths,
        buffer_sizes_mb=args.buffers,
        config=config,
        seed=args.seed,
        progress=lambda message: out.write(message + "\n"),
        workload_kwargs=_workload_kwargs(args),
        workers=args.workers,
    )
    args.out_dir.mkdir(parents=True, exist_ok=True)
    (args.out_dir / "dse.csv").write_text(experiment.to_csv() + "\n")
    out.write(experiment.tables() + "\n")
    out.write(f"results written to {args.out_dir}/dse.csv\n")
    return 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    # Imported here so the service stack is only paid for when serving.
    import signal
    import threading

    from repro.serving.server import serve_http, serve_stdio
    from repro.serving.service import ScheduleService

    # SIGTERM (systemd stop, container runtime, CI teardown) must produce
    # the same clean shutdown as Ctrl+C/EOF: raising KeyboardInterrupt from
    # the handler unwinds into the context manager below, which fails queued
    # requests fast, drains in-flight searches, joins the workers and spills
    # the memo.  Signal handlers are only installable from the main thread
    # (tests drive this function from worker threads).
    previous_handler = None
    if threading.current_thread() is threading.main_thread():

        def _handle_sigterm(_signum, _frame):
            raise KeyboardInterrupt

        previous_handler = signal.signal(signal.SIGTERM, _handle_sigterm)
    try:
        # The context manager guarantees a deterministic shutdown on stdio
        # EOF, a shutdown op, or KeyboardInterrupt (Ctrl+C or SIGTERM):
        # queued requests fail fast, in-flight searches drain, worker
        # processes join and the persisted memo (if any) is spilled before
        # the command returns.
        with ScheduleService(
            workers=args.workers,
            memo_size=args.memo_size,
            queue_size=args.queue_size,
            memo_path=args.memo_path,
            retries=args.retries,
        ) as service:
            if args.http is not None:
                return serve_http(
                    service,
                    args.host,
                    args.http,
                    announce=lambda message: out.write(
                        f"{message} with {service.workers} worker(s)\n"
                    ),
                )
            try:
                return serve_stdio(service, sys.stdin, out)
            except KeyboardInterrupt:
                return 0
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)


def _cmd_lint(args: argparse.Namespace, out) -> int:
    # Imported here so `repro schedule` never pays for the lint stack.
    import repro
    from repro.core.knobs import knobs_table
    from repro.statics.model import Baseline
    from repro.statics.runner import all_rules, regenerate_baseline, run_lint, write_json

    if args.knobs:
        out.write(knobs_table(markdown=True) + "\n")
        return 0
    if args.list_rules:
        for rule in all_rules():
            out.write(f"{rule.id:16s} {rule.severity:8s} {rule.summary}\n")
        return 0

    package_dir = Path(repro.__file__).resolve().parent  # .../src/repro
    root = package_dir.parent.parent  # repo root
    paths = list(args.paths) if args.paths else [package_dir]
    baseline_path = args.baseline or (root / "lint-baseline.json")
    readme = root / "README.md"
    readme = readme if readme.is_file() else None

    if args.write_baseline:
        previous = Baseline.load(baseline_path) if baseline_path.is_file() else None
        fresh = regenerate_baseline(paths, root, baseline_path, readme, previous)
        out.write(
            f"baseline written to {baseline_path} ({len(fresh.entries)} entrie(s)); "
            "fill in any 'TODO: justify' justifications\n"
        )
        return 0

    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    report = run_lint(paths, root, rules=args.rules, baseline=baseline, readme=readme)
    if args.json:
        write_json(report, out)
    else:
        out.write(report.render_text() + "\n")
    return 1 if report.failed(strict=args.strict) else 0


_COMMANDS = {
    "workloads": _cmd_workloads,
    "schedule": _cmd_schedule,
    "compare": _cmd_compare,
    "overall": _cmd_overall,
    "dse": _cmd_dse,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    command = _COMMANDS[args.command]
    return command(args, out)
