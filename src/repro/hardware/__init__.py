"""Hardware substrate: accelerator template of the SoMa paper (Sec. II).

The template consists of DRAM, a shared Global Buffer (GBUF) and a group of
cores, each with a PE array, a vector unit and private L0 buffers.  The
classes here describe that hardware and its energy characteristics; the
behavioural models (intra-tile mapper, schedule evaluator) live in
:mod:`repro.core`.
"""

from repro.hardware.accelerator import (
    AcceleratorConfig,
    cloud_accelerator,
    edge_accelerator,
)
from repro.hardware.core import CoreArrayConfig
from repro.hardware.energy import EnergyModel
from repro.hardware.memory import MemoryConfig

__all__ = [
    "AcceleratorConfig",
    "CoreArrayConfig",
    "EnergyModel",
    "MemoryConfig",
    "edge_accelerator",
    "cloud_accelerator",
]
