"""Unit-energy model.

The paper obtains per-operation unit energies from RTL synthesis of the
authors' commercial accelerator at TSMC 12 nm.  Those numbers are not public,
so this reproduction uses constants with the same relative ordering found in
the architecture literature (MAC << L0 access << GBUF access << DRAM access),
expressed in picojoules.  Absolute energy numbers therefore differ from the
paper, but breakdowns and relative comparisons keep their shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

PJ_TO_J = 1e-12


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy constants (picojoules).

    Attributes
    ----------
    mac_pj:
        Energy of a single INT8 multiply-accumulate.
    vector_op_pj:
        Energy of a single vector-unit element operation.
    l0_pj_per_byte:
        Energy per byte moved between a core's L0 buffers and its PE array.
    gbuf_pj_per_byte:
        Energy per byte moved between the GBUF and a core's L0 buffers.
    dram_pj_per_byte:
        Energy per byte moved between DRAM and the GBUF.
    """

    mac_pj: float = 0.1
    vector_op_pj: float = 0.15
    l0_pj_per_byte: float = 0.12
    gbuf_pj_per_byte: float = 1.2
    dram_pj_per_byte: float = 40.0

    def __post_init__(self) -> None:
        for name in ("mac_pj", "vector_op_pj", "l0_pj_per_byte", "gbuf_pj_per_byte", "dram_pj_per_byte"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def mac_energy_j(self, num_macs: int) -> float:
        """Energy (J) of ``num_macs`` MAC operations."""
        return num_macs * self.mac_pj * PJ_TO_J

    def vector_energy_j(self, num_ops: int) -> float:
        """Energy (J) of ``num_ops`` vector-unit operations."""
        return num_ops * self.vector_op_pj * PJ_TO_J

    def l0_energy_j(self, num_bytes: float) -> float:
        """Energy (J) of moving ``num_bytes`` between L0 and the PE array."""
        return num_bytes * self.l0_pj_per_byte * PJ_TO_J

    def gbuf_energy_j(self, num_bytes: float) -> float:
        """Energy (J) of moving ``num_bytes`` between GBUF and L0."""
        return num_bytes * self.gbuf_pj_per_byte * PJ_TO_J

    def dram_energy_j(self, num_bytes: float) -> float:
        """Energy (J) of moving ``num_bytes`` between DRAM and the GBUF."""
        return num_bytes * self.dram_pj_per_byte * PJ_TO_J
