"""Memory-system description: GBUF capacity and DRAM bandwidth."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

MB = 1024 * 1024
GB_PER_S = 1e9


@dataclass(frozen=True)
class MemoryConfig:
    """Shared Global Buffer and DRAM channel parameters.

    Attributes
    ----------
    gbuf_bytes:
        Capacity of the shared on-chip Global Buffer.
    dram_bandwidth_bytes_per_s:
        Sustained DRAM bandwidth for both loads and stores (the paper models
        a single shared DRAM channel processing its tensor queue in order).
    """

    gbuf_bytes: int
    dram_bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.gbuf_bytes <= 0:
            raise ConfigurationError("gbuf_bytes must be positive")
        if self.dram_bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("dram_bandwidth_bytes_per_s must be positive")

    def dram_transfer_seconds(self, num_bytes: int) -> float:
        """Time to move ``num_bytes`` between DRAM and the GBUF."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / self.dram_bandwidth_bytes_per_s

    def with_gbuf_bytes(self, gbuf_bytes: int) -> "MemoryConfig":
        """Return a copy with a different GBUF capacity (used by the DSE)."""
        return replace(self, gbuf_bytes=gbuf_bytes)

    def with_dram_bandwidth(self, bytes_per_s: float) -> "MemoryConfig":
        """Return a copy with a different DRAM bandwidth (used by the DSE)."""
        return replace(self, dram_bandwidth_bytes_per_s=bytes_per_s)
