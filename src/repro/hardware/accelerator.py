"""Top-level accelerator configuration and the paper's two reference platforms.

The paper evaluates an *edge* platform (16 TOPS, 8 MB GBUF, 16 GB/s DRAM) and
a *cloud* platform (128 TOPS, 32 MB GBUF, 128 GB/s DRAM), both at 1 GHz in a
12 nm process (Sec. VI-A1).  :func:`edge_accelerator` and
:func:`cloud_accelerator` build those configurations; the DSE harness then
varies buffer capacity and DRAM bandwidth around them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.hardware.core import CoreArrayConfig
from repro.hardware.energy import EnergyModel
from repro.hardware.memory import MB, MemoryConfig


@dataclass(frozen=True)
class AcceleratorConfig:
    """Complete description of one accelerator instance."""

    name: str
    frequency_hz: float
    core_array: CoreArrayConfig
    memory: MemoryConfig
    energy: EnergyModel

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("accelerator name must be non-empty")
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency_hz must be positive")

    @property
    def peak_macs_per_s(self) -> float:
        """Peak MAC throughput of the whole chip (MACs per second)."""
        return self.core_array.total_macs_per_cycle * self.frequency_hz

    @property
    def peak_ops_per_s(self) -> float:
        """Peak operation throughput (1 MAC = 2 ops), i.e. the TOPS rating."""
        return 2.0 * self.peak_macs_per_s

    @property
    def peak_tops(self) -> float:
        """Peak throughput in TOPS, convenient for reports."""
        return self.peak_ops_per_s / 1e12

    @property
    def gbuf_bytes(self) -> int:
        """Shortcut for the GBUF capacity."""
        return self.memory.gbuf_bytes

    @property
    def dram_bandwidth_bytes_per_s(self) -> float:
        """Shortcut for the DRAM bandwidth."""
        return self.memory.dram_bandwidth_bytes_per_s

    def with_memory(
        self,
        gbuf_bytes: int | None = None,
        dram_bandwidth_bytes_per_s: float | None = None,
    ) -> "AcceleratorConfig":
        """Return a copy with a modified memory system (used by the DSE)."""
        memory = self.memory
        if gbuf_bytes is not None:
            memory = memory.with_gbuf_bytes(gbuf_bytes)
        if dram_bandwidth_bytes_per_s is not None:
            memory = memory.with_dram_bandwidth(dram_bandwidth_bytes_per_s)
        return replace(self, memory=memory)

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count into seconds at this chip's frequency."""
        return cycles / self.frequency_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds into cycles at this chip's frequency."""
        return seconds * self.frequency_hz


def edge_accelerator(
    gbuf_bytes: int = 8 * MB,
    dram_bandwidth_gb_per_s: float = 16.0,
) -> AcceleratorConfig:
    """The 16 TOPS edge platform used as the paper's default (Sec. VI-A1).

    16 TOPS at 1 GHz requires 8192 MACs per cycle; we organise them as
    8 cores x 1024 MACs, which matches mobile-class NPUs the paper cites
    (Snapdragon 8 Gen 3, Apple A15/A16).
    """
    core_array = CoreArrayConfig(
        num_cores=8,
        macs_per_core=1024,
        vector_lanes_per_core=128,
        al0_bytes=64 * 1024,
        wl0_bytes=64 * 1024,
        ol0_bytes=32 * 1024,
        gbuf_bytes_per_cycle=256.0,
        kc_parallel_lanes=128,
        tile_overhead_cycles=512,
    )
    memory = MemoryConfig(
        gbuf_bytes=gbuf_bytes,
        dram_bandwidth_bytes_per_s=dram_bandwidth_gb_per_s * 1e9,
    )
    return AcceleratorConfig(
        name="edge-16tops",
        frequency_hz=1e9,
        core_array=core_array,
        memory=memory,
        energy=EnergyModel(),
    )


def cloud_accelerator(
    gbuf_bytes: int = 32 * MB,
    dram_bandwidth_gb_per_s: float = 128.0,
) -> AcceleratorConfig:
    """The 128 TOPS cloud platform of the paper (NVIDIA Orin / TPU v4i class)."""
    core_array = CoreArrayConfig(
        num_cores=32,
        macs_per_core=2048,
        vector_lanes_per_core=256,
        al0_bytes=128 * 1024,
        wl0_bytes=128 * 1024,
        ol0_bytes=64 * 1024,
        gbuf_bytes_per_cycle=2048.0,
        kc_parallel_lanes=512,
        tile_overhead_cycles=512,
    )
    memory = MemoryConfig(
        gbuf_bytes=gbuf_bytes,
        dram_bandwidth_bytes_per_s=dram_bandwidth_gb_per_s * 1e9,
    )
    return AcceleratorConfig(
        name="cloud-128tops",
        frequency_hz=1e9,
        core_array=core_array,
        memory=memory,
        energy=EnergyModel(),
    )
