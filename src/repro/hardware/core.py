"""Description of the compute-core group (PE arrays, vector units, L0 buffers)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CoreArrayConfig:
    """Static description of the core group inside the accelerator template.

    Attributes
    ----------
    num_cores:
        Number of identical cores sharing the GBUF.
    macs_per_core:
        MAC units per core, i.e. MAC operations one core can issue per cycle.
    vector_lanes_per_core:
        Vector-unit lanes per core (element-wise operations per cycle).
    al0_bytes / wl0_bytes / ol0_bytes:
        Private L0 buffer capacities for activations, weights and outputs.
    gbuf_bytes_per_cycle:
        Aggregate GBUF bandwidth available to the core group per cycle.
    kc_parallel_lanes:
        Kernel-Channel parallel lanes across the core group.  This is the
        quantity the Cocco heuristic uses to pick its (conservative) Tiling
        Number (Sec. VII-B1 of the paper).
    tile_overhead_cycles:
        Fixed per-tile synchronisation / descriptor-setup overhead.  This is
        what makes very fine-grained tilings lose efficiency.
    """

    num_cores: int
    macs_per_core: int
    vector_lanes_per_core: int
    al0_bytes: int
    wl0_bytes: int
    ol0_bytes: int
    gbuf_bytes_per_cycle: float
    kc_parallel_lanes: int
    tile_overhead_cycles: int = 512

    def __post_init__(self) -> None:
        positive_fields = (
            ("num_cores", self.num_cores),
            ("macs_per_core", self.macs_per_core),
            ("vector_lanes_per_core", self.vector_lanes_per_core),
            ("al0_bytes", self.al0_bytes),
            ("wl0_bytes", self.wl0_bytes),
            ("ol0_bytes", self.ol0_bytes),
            ("gbuf_bytes_per_cycle", self.gbuf_bytes_per_cycle),
            ("kc_parallel_lanes", self.kc_parallel_lanes),
        )
        for name, value in positive_fields:
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value!r}")
        if self.tile_overhead_cycles < 0:
            raise ConfigurationError("tile_overhead_cycles must be non-negative")

    @property
    def total_macs_per_cycle(self) -> int:
        """MAC operations the whole core group can issue per cycle."""
        return self.num_cores * self.macs_per_core

    @property
    def total_vector_lanes(self) -> int:
        """Vector operations the whole core group can issue per cycle."""
        return self.num_cores * self.vector_lanes_per_core

    @property
    def l0_bytes_per_core(self) -> int:
        """Total private L0 capacity of a single core."""
        return self.al0_bytes + self.wl0_bytes + self.ol0_bytes
