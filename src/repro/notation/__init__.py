"""Tensor-centric Notation (paper Sec. IV).

An encoding has six attributes split into two categories:

* Layer-Fusion-related Attributes (**LFA**): Computing Order, Fine-grained
  Layer-fusion Cut set (FLC), per-FLG Tiling Number, DRAM Cut set.
* DRAM-Load-and-Store-related Attributes (**DLSA**): DRAM Tensor Order and a
  Living Duration per DRAM tensor.

Parsing the LFA yields the compute-tile sequence, the on-chip buffer
lifetimes and the set of tensors that must interact with DRAM; parsing the
DLSA yields the timing and buffering of those DRAM tensors.  The resulting
:class:`~repro.notation.plan.ComputePlan` is what the evaluator simulates.

Two construction paths produce bit-identical plans: the reference parser
(:func:`parse_lfa`, one monolithic pass) and the segment assembler
(:mod:`repro.notation.segments`), which builds plans from cached per-LG
fragments and powers the stage-1 incremental hot path.
"""

from repro.notation.dlsa import DLSA
from repro.notation.dram_tensor import DRAMTensor, TensorKind
from repro.notation.encoding import ScheduleEncoding
from repro.notation.lfa import LFA, LFADelta
from repro.notation.parser import parse_lfa
from repro.notation.plan import BufferInterval, ComputePlan, ComputeTile
from repro.notation.segments import PlanAssembler, PlanSegment, build_plan_cached

__all__ = [
    "DLSA",
    "DRAMTensor",
    "TensorKind",
    "ScheduleEncoding",
    "LFA",
    "LFADelta",
    "BufferInterval",
    "ComputePlan",
    "ComputeTile",
    "PlanAssembler",
    "PlanSegment",
    "build_plan_cached",
    "parse_lfa",
]
