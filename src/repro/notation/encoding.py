"""Complete encodings: LFA plus (optionally) DLSA.

The LFA exploration stage works with LFA-only encodings and fills in the
DLSA with the classical double-buffer strategy; the DLSA exploration stage
then pins the LFA and varies the DLSA.  :class:`ScheduleEncoding` bundles
the two so results, reports and the compiler back-end have a single handle
on "one point of the DRAM Communication Scheduling Space".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.notation.dlsa import DLSA
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa
from repro.notation.plan import ComputePlan
from repro.workloads.graph import WorkloadGraph


@dataclass(frozen=True)
class ScheduleEncoding:
    """One point in the DRAM Communication Scheduling Space.

    ``dlsa`` may be ``None``, meaning "use the double-buffer default derived
    from the parsed plan" — which is exactly how the LFA stage evaluates
    candidate layer fusions.
    """

    lfa: LFA
    dlsa: DLSA | None = None

    def parse(self, graph: WorkloadGraph) -> tuple[ComputePlan, DLSA | None]:
        """Parse the encoding against a workload.

        Returns the compute plan and the effective DLSA (the stored one, or
        the double-buffer default when none was provided).  Infeasible plans
        come back with ``dlsa=None``.
        """
        plan = parse_lfa(graph, self.lfa)
        if not plan.feasible:
            return plan, None
        dlsa = self.dlsa if self.dlsa is not None else DLSA.from_defaults(plan.dram_tensors)
        dlsa.validate(plan.dram_tensors)
        return plan, dlsa

    def with_dlsa(self, dlsa: DLSA) -> "ScheduleEncoding":
        """Return a copy with the DLSA replaced."""
        return ScheduleEncoding(lfa=self.lfa, dlsa=dlsa)

    def describe(self) -> str:
        """Human readable description of the encoding."""
        dlsa_part = "double-buffer DLSA" if self.dlsa is None else (
            f"explored DLSA over {len(self.dlsa.order)} DRAM tensors"
        )
        return f"{self.lfa.describe()} ; {dlsa_part}"
