"""Parsed schedule structures: the output of LFA parsing.

A :class:`ComputePlan` holds everything the evaluator needs that does not
depend on the DLSA: the global tile sequence, the per-layer tilings, the
canonical DRAM-tensor list, the loads each tile waits for and the buffer
lifetimes of on-chip (fused) feature maps.

Plans built by the segment assembler are *offset-indirect*: they do not
materialise the global tile/tensor object lists at construction.  Instead
they carry a ``segment_view`` indirection table — one ``(segment,
tile_offset, tid_offset)`` entry per LG — plus flat numpy arrays stitched
from cached per-segment locals.  Every classic view (``tiles``,
``dram_tensors``, ``onchip_intervals``, ``tile_required_loads``) is a lazy
cached property that resolves through the table on first touch, so the
stage-1 hot loop, which only reads the flat arrays, never pays for the
objects.  Point lookups go through :meth:`tile` / :meth:`tensor`, which
bisect the offset table instead of materialising the lists.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property

try:  # numpy is optional: plans fall back to list views without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

from repro.notation.dram_tensor import DRAMTensor, TensorKind
from repro.notation.lfa import LFA, stable_digest
from repro.tiling.tile import LayerTiling
from repro.workloads.graph import WorkloadGraph


@dataclass(frozen=True)
class ComputeTile:
    """One entry of the global compute sequence."""

    index: int
    layer: str
    tile_id: int
    flg_index: int
    lg_index: int
    macs: int
    vector_ops: int

    @property
    def ops(self) -> int:
        """Operation count of this tile (2 ops per MAC)."""
        return 2 * self.macs + self.vector_ops


@dataclass(frozen=True)
class BufferInterval:
    """GBUF residency of one on-chip (non-DRAM) data item.

    The item occupies ``num_bytes`` of the buffer while the compute sequence
    executes tiles ``start_tile`` .. ``end_tile`` (inclusive).
    """

    start_tile: int
    end_tile: int
    num_bytes: int
    label: str = ""


_KINDS = (TensorKind.WEIGHT, TensorKind.IFMAP, TensorKind.OFMAP)


def _fast_tile(index, layer, tile_id, flg_index, lg_index, macs, vector_ops) -> ComputeTile:
    # Frozen-dataclass construction pays one object.__setattr__ per field;
    # lazy materialisation builds hundreds of tiles per plan, all valid by
    # construction, so it installs the instance dict wholesale.
    tile = ComputeTile.__new__(ComputeTile)
    object.__setattr__(tile, "__dict__", {
        "index": index,
        "layer": layer,
        "tile_id": tile_id,
        "flg_index": flg_index,
        "lg_index": lg_index,
        "macs": macs,
        "vector_ops": vector_ops,
    })
    return tile


def _fast_tensor(tid, kind, layer, tile_id, num_bytes, first_use, last_use, source_layer) -> DRAMTensor:
    # Same fast path as _fast_tile: segment specs carry validated use
    # ranges, so DRAMTensor.__post_init__ has nothing left to check.
    tensor = DRAMTensor.__new__(DRAMTensor)
    object.__setattr__(tensor, "__dict__", {
        "tid": tid,
        "kind": kind,
        "layer": layer,
        "tile_id": tile_id,
        "num_bytes": num_bytes,
        "first_use": first_use,
        "last_use": last_use,
        "source_layer": source_layer,
    })
    return tensor


class ComputePlan:
    """Everything derived from an LFA (independent of the DLSA).

    Constructed either by the reference parser (which passes the
    materialised lists) or by the segment assembler (which passes none of
    them and prefills flat arrays plus ``segment_view`` instead — the list
    views then materialise lazily on first access).
    """

    # Set by the segment assembler: ``((segment, tile_offset, tid_offset),
    # ...)`` — one entry per LG, in order.  ``None`` on plans built by the
    # reference parser.  Lets the evaluator reuse per-segment static costs,
    # lets delta-driven assembly reuse a parent plan's segments, and is the
    # indirection table the lazy views resolve through.
    segment_view = None

    def __init__(
        self,
        graph: WorkloadGraph,
        lfa: LFA,
        feasible: bool,
        infeasibility_reason: str = "",
        tiles: list[ComputeTile] | None = None,
        dram_tensors: list[DRAMTensor] | None = None,
        onchip_intervals: list[BufferInterval] | None = None,
        layer_tilings: dict[str, LayerTiling] | None = None,
        tile_required_loads: list[list[int]] | None = None,
        flg_of_layer: dict[str, int] | None = None,
        lg_of_layer: dict[str, int] | None = None,
        num_flgs: int = 0,
        num_lgs: int = 0,
    ) -> None:
        self.graph = graph
        self.lfa = lfa
        self.feasible = feasible
        self.infeasibility_reason = infeasibility_reason
        # Materialised views are only assigned when provided; otherwise the
        # instance dict stays empty and the cached properties below resolve
        # them through ``segment_view`` on first access.
        if tiles is not None:
            self.tiles = tiles
        if dram_tensors is not None:
            self.dram_tensors = dram_tensors
        if onchip_intervals is not None:
            self.onchip_intervals = onchip_intervals
        if tile_required_loads is not None:
            self.tile_required_loads = tile_required_loads
        self.layer_tilings = layer_tilings if layer_tilings is not None else {}
        self.flg_of_layer = flg_of_layer if flg_of_layer is not None else {}
        self.lg_of_layer = lg_of_layer if lg_of_layer is not None else {}
        self.num_flgs = num_flgs
        self.num_lgs = num_lgs

    # -------------------------------------------------------------- identity
    def fingerprint(self) -> str:
        """Stable content digest of this plan, usable as a cache key.

        A plan is a pure function of its workload graph and LFA, so the
        fingerprint combines the graph's content digest (layers, shapes and
        edges — not just its name) with the LFA fingerprint.  Memoised on
        the instance.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = stable_digest("plan", self.graph.fingerprint(), self.lfa.fingerprint())
            self.__dict__["_fingerprint"] = cached
        return cached

    # ------------------------------------------------------ indirection table
    @cached_property
    def _frag_view(self) -> tuple:
        """``segment_view`` extended with derived offsets.

        One ``(segment, tile_offset, tid_offset, flg_offset, lg_index)``
        entry per LG — the FLG offset and LG index are recovered from the
        table order, so the stored view stays the minimal triple.
        """
        view = self.segment_view
        if view is None or not self.feasible:
            return ()
        out = []
        flg_offset = 0
        for lg_index, (segment, tile_offset, tid_offset) in enumerate(view):
            out.append((segment, tile_offset, tid_offset, flg_offset, lg_index))
            flg_offset += segment.num_flgs
        return tuple(out)

    @cached_property
    def _tile_offsets(self) -> list[int]:
        return [entry[1] for entry in self._frag_view]

    @cached_property
    def _tid_offsets(self) -> list[int]:
        return [entry[2] for entry in self._frag_view]

    def tile(self, index: int) -> ComputeTile:
        """Resolve one compute tile by global index through the offset table.

        Falls back to the materialised list when one exists (reference
        plans, or assembled plans whose ``tiles`` were already touched);
        otherwise builds the single tile from its segment's local record
        without materialising the global sequence.
        """
        tiles = self.__dict__.get("tiles")
        if tiles is not None:
            return tiles[index]
        if not 0 <= index < self.num_tiles:
            raise IndexError(f"tile index {index} out of range")
        lg = bisect_right(self._tile_offsets, index) - 1
        segment, tile_offset, _tid, flg_offset, lg_index = self._frag_view[lg]
        layer, tile_id, flg, macs, vops = segment.tiles[index - tile_offset]
        return _fast_tile(index, layer, tile_id, flg_offset + flg, lg_index, macs, vops)

    def tensor(self, tid: int) -> DRAMTensor:
        """Resolve one DRAM tensor by id through the offset table."""
        tensors = self.__dict__.get("dram_tensors")
        if tensors is not None:
            return tensors[tid]
        if not 0 <= tid < self.num_dram_tensors:
            raise IndexError(f"tensor id {tid} out of range")
        lg = bisect_right(self._tid_offsets, tid) - 1
        segment, tile_offset, tid_offset, _flg, _lg = self._frag_view[lg]
        row = segment.specs[tid - tid_offset]
        return _fast_tensor(
            tid,
            _KINDS[row[1]],
            row[2],
            row[3],
            row[4],
            tile_offset + row[0],
            tile_offset + row[5],
            row[6],
        )

    # ------------------------------------------------------------- lazy views
    @cached_property
    def tiles(self) -> list[ComputeTile]:
        """The global compute sequence (materialised on first access)."""
        tiles: list[ComputeTile] = []
        for segment, tile_offset, _tid, flg_offset, lg_index in self._frag_view:
            for index, (layer, tile_id, flg, macs, vops) in enumerate(segment.tiles):
                tiles.append(
                    _fast_tile(
                        tile_offset + index, layer, tile_id, flg_offset + flg,
                        lg_index, macs, vops,
                    )
                )
        return tiles

    @cached_property
    def dram_tensors(self) -> list[DRAMTensor]:
        """The canonical DRAM-tensor list (materialised on first access)."""
        tensors: list[DRAMTensor] = []
        for segment, tile_offset, tid_offset, _flg, _lg in self._frag_view:
            for tid, row in enumerate(segment.specs):
                tensors.append(
                    _fast_tensor(
                        tid_offset + tid,
                        _KINDS[row[1]],
                        row[2],
                        row[3],
                        row[4],
                        tile_offset + row[0],
                        tile_offset + row[5],
                        row[6],
                    )
                )
        return tensors

    @cached_property
    def onchip_intervals(self) -> list[BufferInterval]:
        """On-chip fmap lifetimes (materialised on first access)."""
        intervals: list[BufferInterval] = []
        for segment, tile_offset, _tid, _flg, _lg in self._frag_view:
            for start, end, num_bytes, label in segment.onchip:
                intervals.append(
                    BufferInterval(
                        start_tile=tile_offset + start,
                        end_tile=tile_offset + end,
                        num_bytes=num_bytes,
                        label=label,
                    )
                )
        return intervals

    @cached_property
    def tile_required_loads(self) -> list[list[int]]:
        """Per-tile required load tids (materialised on first access)."""
        required: list[list[int]] = []
        for segment, _tile, tid_offset, _flg, _lg in self._frag_view:
            for tids in segment.required_loads:
                required.append([tid_offset + tid for tid in tids])
        return required

    # ------------------------------------------------------------ flat arrays
    @cached_property
    def tensor_np(self):
        """Numpy ``(is_load, num_bytes, first_use, last_use)`` per tensor.

        Prefilled by the segment assembler (stitched from cached per-segment
        locals); the fallback converts :attr:`tensor_arrays` for plans built
        by the reference parser.  Requires numpy.
        """
        is_load, num_bytes, first_use, last_use = self.tensor_arrays
        return (
            _np.asarray(is_load, dtype=bool),
            _np.asarray(num_bytes, dtype=_np.int64),
            _np.asarray(first_use, dtype=_np.int64),
            _np.asarray(last_use, dtype=_np.int64),
        )

    @cached_property
    def req_csr(self):
        """CSR view ``(starts, flat)`` of :attr:`tile_required_loads`.

        ``starts`` has one entry per tile (the row's offset into ``flat``);
        empty rows repeat the next offset, matching numpy ``reduceat``
        conventions.  Prefilled by the segment assembler; requires numpy on
        the fallback path.
        """
        flat: list[int] = []
        starts: list[int] = []
        for tids in self.tile_required_loads:
            starts.append(len(flat))
            flat.extend(tids)
        return (
            _np.asarray(starts, dtype=_np.int64),
            _np.asarray(flat, dtype=_np.int64),
        )

    @cached_property
    def onchip_np(self):
        """Numpy ``(start_tile, end_tile, num_bytes)`` per on-chip interval.

        Prefilled by the segment assembler; requires numpy on the fallback
        path.
        """
        intervals = self.onchip_intervals
        return (
            _np.asarray([iv.start_tile for iv in intervals], dtype=_np.int64),
            _np.asarray([iv.end_tile for iv in intervals], dtype=_np.int64),
            _np.asarray([iv.num_bytes for iv in intervals], dtype=_np.int64),
        )

    @cached_property
    def tensor_size_weights(self) -> list[int]:
        """Per-tensor selection weights (bytes, floored at 1) for the DLSA stage.

        The DLSA operators pick tensors with probability proportional to
        their size on every move; the weights only depend on the plan, so
        they are computed once and memoised here.
        """
        return [num_bytes if num_bytes > 0 else 1 for num_bytes in self.tensor_arrays[1]]

    @cached_property
    def tensor_weight_cumsum(self) -> list[int]:
        """Cumulative :attr:`tensor_size_weights`, for O(log n) weighted picks.

        ``random.Random.choices`` rebuilds this prefix sum on every call; the
        move proposer bisects this cached copy instead, drawing the same
        uniform so the selected tensor is identical.
        """
        total = 0
        cumulative: list[int] = []
        for weight in self.tensor_size_weights:
            total += weight
            cumulative.append(total)
        return cumulative

    @cached_property
    def tensor_arrays(self) -> tuple[list[bool], list[int], list[int], list[int]]:
        """Flat per-tensor arrays ``(is_load, num_bytes, first_use, last_use)``.

        The evaluation engine walks these thousands of times per search; flat
        lists avoid a property call per access.  The parsers pre-fill the
        numpy view or this cached property at plan construction, so the
        object-walking fallback here only runs for hand-built plans.
        ``ndarray.tolist`` yields exact Python ints and bools, so both fill
        paths produce identical lists.
        """
        arrays = self.__dict__.get("tensor_np")
        if arrays is not None:
            return tuple(array.tolist() for array in arrays)
        is_load: list[bool] = []
        num_bytes: list[int] = []
        first_use: list[int] = []
        last_use: list[int] = []
        for tensor in self.dram_tensors:
            is_load.append(tensor.kind is not TensorKind.OFMAP)
            num_bytes.append(tensor.num_bytes)
            first_use.append(tensor.first_use)
            last_use.append(tensor.last_use)
        return is_load, num_bytes, first_use, last_use

    @cached_property
    def store_structure(self) -> tuple[list[int], list[tuple[int, ...]]]:
        """``(store_tids, src_store_tids)`` for the co-operative simulation.

        ``store_tids`` lists every store in canonical tensor order;
        ``src_store_tids[tid]`` holds, for a load that reads back another
        LG's stored ofmap, the store tids it must wait for (gate order of
        the seed evaluator).  Pre-filled by both parsers like
        :attr:`tensor_arrays`.
        """
        stores_of_layer: dict[str, list[int]] = {}
        store_tids: list[int] = []
        for tensor in self.dram_tensors:
            if tensor.kind is TensorKind.OFMAP:
                stores_of_layer.setdefault(tensor.layer, []).append(tensor.tid)
                store_tids.append(tensor.tid)
        src_store_tids: list[tuple[int, ...]] = [
            tuple(stores_of_layer.get(t.source_layer, ()))
            if (t.kind is not TensorKind.OFMAP and t.source_layer is not None)
            else ()
            for t in self.dram_tensors
        ]
        return store_tids, src_store_tids

    # ------------------------------------------------------------------ stats
    @cached_property
    def num_tiles(self) -> int:
        """Length of the global compute sequence (prefilled by the assembler)."""
        view = self._frag_view
        if view:
            last = view[-1]
            return last[1] + last[0].num_tiles
        return len(self.tiles)

    @cached_property
    def num_dram_tensors(self) -> int:
        """Number of DRAM load/store requests (prefilled by the assembler)."""
        view = self._frag_view
        if view:
            last = view[-1]
            return last[2] + last[0].num_tensors
        return len(self.dram_tensors)

    @cached_property
    def total_dram_bytes(self) -> int:
        """Total DRAM traffic (loads + stores) in bytes."""
        return sum(t.num_bytes for t in self.dram_tensors)

    @cached_property
    def total_dram_load_bytes(self) -> int:
        """Total DRAM load traffic in bytes."""
        return sum(t.num_bytes for t in self.dram_tensors if t.is_load)

    @cached_property
    def total_dram_store_bytes(self) -> int:
        """Total DRAM store traffic in bytes."""
        return sum(t.num_bytes for t in self.dram_tensors if t.is_store)

    @cached_property
    def total_macs(self) -> int:
        """MACs summed over the whole tile sequence (halo recompute included)."""
        return sum(t.macs for t in self.tiles)

    @cached_property
    def total_ops(self) -> int:
        """Operations summed over the whole tile sequence."""
        return sum(t.ops for t in self.tiles)

    def tensors_by_kind(self, kind: TensorKind) -> list[DRAMTensor]:
        """All DRAM tensors of one kind."""
        return [t for t in self.dram_tensors if t.kind is kind]

    def tiles_of_layer(self, layer: str) -> list[ComputeTile]:
        """All tiles of one layer, in execution order."""
        return [tile for tile in self.tiles if tile.layer == layer]

    def describe(self) -> str:
        """Compact summary used in reports and examples."""
        if not self.feasible:
            return f"infeasible plan: {self.infeasibility_reason}"
        return (
            f"plan: {self.num_tiles} tiles, {self.num_lgs} LGs, {self.num_flgs} FLGs, "
            f"{self.num_dram_tensors} DRAM tensors, "
            f"{self.total_dram_bytes / 1e6:.2f} MB DRAM traffic"
        )
