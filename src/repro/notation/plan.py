"""Parsed schedule structures: the output of LFA parsing.

A :class:`ComputePlan` holds everything the evaluator needs that does not
depend on the DLSA: the global tile sequence, the per-layer tilings, the
canonical DRAM-tensor list, the loads each tile waits for and the buffer
lifetimes of on-chip (fused) feature maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import ClassVar

from repro.notation.dram_tensor import DRAMTensor, TensorKind
from repro.notation.lfa import LFA, stable_digest
from repro.tiling.tile import LayerTiling
from repro.workloads.graph import WorkloadGraph


@dataclass(frozen=True)
class ComputeTile:
    """One entry of the global compute sequence."""

    index: int
    layer: str
    tile_id: int
    flg_index: int
    lg_index: int
    macs: int
    vector_ops: int

    @property
    def ops(self) -> int:
        """Operation count of this tile (2 ops per MAC)."""
        return 2 * self.macs + self.vector_ops


@dataclass(frozen=True)
class BufferInterval:
    """GBUF residency of one on-chip (non-DRAM) data item.

    The item occupies ``num_bytes`` of the buffer while the compute sequence
    executes tiles ``start_tile`` .. ``end_tile`` (inclusive).
    """

    start_tile: int
    end_tile: int
    num_bytes: int
    label: str = ""


@dataclass
class ComputePlan:
    """Everything derived from an LFA (independent of the DLSA)."""

    graph: WorkloadGraph
    lfa: LFA
    feasible: bool
    infeasibility_reason: str = ""
    tiles: list[ComputeTile] = field(default_factory=list)
    dram_tensors: list[DRAMTensor] = field(default_factory=list)
    onchip_intervals: list[BufferInterval] = field(default_factory=list)
    layer_tilings: dict[str, LayerTiling] = field(default_factory=dict)
    tile_required_loads: list[list[int]] = field(default_factory=list)
    flg_of_layer: dict[str, int] = field(default_factory=dict)
    lg_of_layer: dict[str, int] = field(default_factory=dict)
    num_flgs: int = 0
    num_lgs: int = 0

    # Set by the segment assembler: ``((segment, tile_offset, tid_offset),
    # ...)`` — one entry per LG, in order.  ``None`` on plans built by the
    # reference parser.  Lets the evaluator reuse per-segment static costs
    # and lets delta-driven assembly reuse a parent plan's segments.
    segment_view: ClassVar = None

    # -------------------------------------------------------------- identity
    def fingerprint(self) -> str:
        """Stable content digest of this plan, usable as a cache key.

        A plan is a pure function of its workload graph and LFA, so the
        fingerprint combines the graph's content digest (layers, shapes and
        edges — not just its name) with the LFA fingerprint.  Memoised on
        the instance.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = stable_digest("plan", self.graph.fingerprint(), self.lfa.fingerprint())
            self.__dict__["_fingerprint"] = cached
        return cached

    @cached_property
    def tensor_size_weights(self) -> list[int]:
        """Per-tensor selection weights (bytes, floored at 1) for the DLSA stage.

        The DLSA operators pick tensors with probability proportional to
        their size on every move; the weights only depend on the plan, so
        they are computed once and memoised here.
        """
        return [num_bytes if num_bytes > 0 else 1 for num_bytes in self.tensor_arrays[1]]

    @cached_property
    def tensor_weight_cumsum(self) -> list[int]:
        """Cumulative :attr:`tensor_size_weights`, for O(log n) weighted picks.

        ``random.Random.choices`` rebuilds this prefix sum on every call; the
        move proposer bisects this cached copy instead, drawing the same
        uniform so the selected tensor is identical.
        """
        total = 0
        cumulative: list[int] = []
        for weight in self.tensor_size_weights:
            total += weight
            cumulative.append(total)
        return cumulative

    @cached_property
    def tensor_arrays(self) -> tuple[list[bool], list[int], list[int], list[int]]:
        """Flat per-tensor arrays ``(is_load, num_bytes, first_use, last_use)``.

        The evaluation engine walks these thousands of times per search; flat
        lists avoid a property call per access.  The parser pre-fills this
        cached property at plan construction (it has the values at hand), so
        the fallback here only runs for hand-built plans.
        """
        is_load: list[bool] = []
        num_bytes: list[int] = []
        first_use: list[int] = []
        last_use: list[int] = []
        for tensor in self.dram_tensors:
            is_load.append(tensor.kind is not TensorKind.OFMAP)
            num_bytes.append(tensor.num_bytes)
            first_use.append(tensor.first_use)
            last_use.append(tensor.last_use)
        return is_load, num_bytes, first_use, last_use

    @cached_property
    def store_structure(self) -> tuple[list[int], list[tuple[int, ...]]]:
        """``(store_tids, src_store_tids)`` for the co-operative simulation.

        ``store_tids`` lists every store in canonical tensor order;
        ``src_store_tids[tid]`` holds, for a load that reads back another
        LG's stored ofmap, the store tids it must wait for (gate order of
        the seed evaluator).  Pre-filled by the parser like
        :attr:`tensor_arrays`.
        """
        stores_of_layer: dict[str, list[int]] = {}
        store_tids: list[int] = []
        for tensor in self.dram_tensors:
            if tensor.kind is TensorKind.OFMAP:
                stores_of_layer.setdefault(tensor.layer, []).append(tensor.tid)
                store_tids.append(tensor.tid)
        src_store_tids: list[tuple[int, ...]] = [
            tuple(stores_of_layer.get(t.source_layer, ()))
            if (t.kind is not TensorKind.OFMAP and t.source_layer is not None)
            else ()
            for t in self.dram_tensors
        ]
        return store_tids, src_store_tids

    # ------------------------------------------------------------------ stats
    @property
    def num_tiles(self) -> int:
        """Length of the global compute sequence."""
        return len(self.tiles)

    @property
    def num_dram_tensors(self) -> int:
        """Number of DRAM load/store requests."""
        return len(self.dram_tensors)

    @property
    def total_dram_bytes(self) -> int:
        """Total DRAM traffic (loads + stores) in bytes."""
        return sum(t.num_bytes for t in self.dram_tensors)

    @property
    def total_dram_load_bytes(self) -> int:
        """Total DRAM load traffic in bytes."""
        return sum(t.num_bytes for t in self.dram_tensors if t.is_load)

    @property
    def total_dram_store_bytes(self) -> int:
        """Total DRAM store traffic in bytes."""
        return sum(t.num_bytes for t in self.dram_tensors if t.is_store)

    @property
    def total_macs(self) -> int:
        """MACs summed over the whole tile sequence (halo recompute included)."""
        return sum(t.macs for t in self.tiles)

    @property
    def total_ops(self) -> int:
        """Operations summed over the whole tile sequence."""
        return sum(t.ops for t in self.tiles)

    def tensors_by_kind(self, kind: TensorKind) -> list[DRAMTensor]:
        """All DRAM tensors of one kind."""
        return [t for t in self.dram_tensors if t.kind is kind]

    def tensor(self, tid: int) -> DRAMTensor:
        """Return the DRAM tensor with the given id."""
        return self.dram_tensors[tid]

    def tiles_of_layer(self, layer: str) -> list[ComputeTile]:
        """All tiles of one layer, in execution order."""
        return [tile for tile in self.tiles if tile.layer == layer]

    def describe(self) -> str:
        """Compact summary used in reports and examples."""
        if not self.feasible:
            return f"infeasible plan: {self.infeasibility_reason}"
        return (
            f"plan: {self.num_tiles} tiles, {self.num_lgs} LGs, {self.num_flgs} FLGs, "
            f"{self.num_dram_tensors} DRAM tensors, "
            f"{self.total_dram_bytes / 1e6:.2f} MB DRAM traffic"
        )
