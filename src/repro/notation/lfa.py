"""Layer-Fusion-related Attributes (LFA) of the Tensor-centric Notation.

The LFA fixes the coarse structure of a schedule: the serial computing order
of the layers, where the order is cut into Fine-grained Layer-fusion Groups
(FLGs), which of those cuts also force a round trip through DRAM (DRAM Cuts,
delimiting Layer-fusion Groups, LGs), and the Tiling Number of every FLG.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import EncodingError
from repro.workloads.graph import WorkloadGraph


def stable_digest(*parts: object) -> str:
    """Process-independent hex digest of a tuple of canonical values.

    ``hash()`` is salted per interpreter, so every fingerprint in the
    notation layer goes through this helper instead: the digest is stable
    across processes, which lets parallel workers and on-disk artifacts agree
    on cache keys.
    """
    payload = repr(parts).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


@dataclass(frozen=True)
class LFA:
    """Layer-fusion attributes of one scheduling scheme.

    Attributes
    ----------
    computing_order:
        Dependency-respecting permutation of all layer names.
    flc_set:
        Cut positions (1 .. n_layers - 1); a cut at position ``p`` separates
        ``computing_order[p - 1]`` from ``computing_order[p]``.
    dram_cut_set:
        Subset of ``flc_set``; these cuts additionally force the dependency
        data crossing them through DRAM, delimiting the LGs.
    tiling_numbers:
        Tiling Number per FLG, keyed by the FLG's *start position* in the
        computing order (position 0 plus every FLC position).  Keying by
        start position keeps the mapping stable when other cuts move.
    """

    computing_order: tuple[str, ...]
    flc_set: frozenset[int] = frozenset()
    dram_cut_set: frozenset[int] = frozenset()
    tiling_numbers: dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------- validation
    def validate(self, graph: WorkloadGraph) -> None:
        """Raise :class:`EncodingError` if the LFA is structurally invalid."""
        n = len(self.computing_order)
        if n != len(graph):
            raise EncodingError(
                f"computing order has {n} layers, workload has {len(graph)}"
            )
        if not graph.is_valid_order(self.computing_order):
            raise EncodingError("computing order violates layer dependencies")
        for cut in self.flc_set:
            if not 1 <= cut <= n - 1:
                raise EncodingError(f"FLC position {cut} out of range 1..{n - 1}")
        if not self.dram_cut_set <= self.flc_set:
            raise EncodingError("DRAM Cut set must be a subset of the FLC set")
        expected_keys = {0} | set(self.flc_set)
        if set(self.tiling_numbers) != expected_keys:
            raise EncodingError(
                "tiling_numbers keys must be the FLG start positions "
                f"{sorted(expected_keys)}, got {sorted(self.tiling_numbers)}"
            )
        for start, tiling in self.tiling_numbers.items():
            if tiling <= 0:
                raise EncodingError(f"Tiling Number at position {start} must be positive")

    # -------------------------------------------------------------- identity
    def fingerprint(self) -> str:
        """Stable content digest of this LFA, usable as a cache key.

        Two LFAs with equal attributes share a fingerprint regardless of set
        or dict iteration order.  The digest is memoised on the instance, so
        callers must not mutate ``tiling_numbers`` after the first call (the
        exploration operators always build fresh LFAs).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = stable_digest(
                "lfa",
                self.computing_order,
                tuple(sorted(self.flc_set)),
                tuple(sorted(self.dram_cut_set)),
                tuple(sorted(self.tiling_numbers.items())),
            )
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # --------------------------------------------------------------- structure
    def flg_ranges(self) -> list[tuple[int, int]]:
        """Half-open (start, end) index ranges of the FLGs, in order."""
        return self._ranges(self.flc_set)

    def lg_ranges(self) -> list[tuple[int, int]]:
        """Half-open (start, end) index ranges of the LGs, in order."""
        return self._ranges(self.dram_cut_set)

    def _ranges(self, cuts: frozenset[int]) -> list[tuple[int, int]]:
        n = len(self.computing_order)
        boundaries = [0] + sorted(cuts) + [n]
        return [
            (boundaries[i], boundaries[i + 1])
            for i in range(len(boundaries) - 1)
            if boundaries[i] < boundaries[i + 1]
        ]

    def flg_layers(self) -> list[list[str]]:
        """Layer names of every FLG, in order."""
        return [list(self.computing_order[a:b]) for a, b in self.flg_ranges()]

    def lg_layers(self) -> list[list[str]]:
        """Layer names of every LG, in order."""
        return [list(self.computing_order[a:b]) for a, b in self.lg_ranges()]

    def flg_of_position(self, position: int) -> int:
        """Index of the FLG containing the layer at ``position`` in the order."""
        for flg_index, (start, end) in enumerate(self.flg_ranges()):
            if start <= position < end:
                return flg_index
        raise EncodingError(f"position {position} outside the computing order")

    def tiling_number_of_flg(self, flg_index: int) -> int:
        """Tiling Number of the FLG with the given index."""
        start, _ = self.flg_ranges()[flg_index]
        return self.tiling_numbers[start]

    def lg_index_of_position(self, position: int) -> int:
        """Index of the LG (DRAM-cut-delimited segment) containing ``position``."""
        for lg_index, (start, end) in enumerate(self.lg_ranges()):
            if start <= position < end:
                return lg_index
        raise EncodingError(f"position {position} outside the computing order")

    def segment_specs(self) -> list[tuple[tuple[str, ...], tuple[int, ...], tuple[int, ...]]]:
        """Content specs of the plan segments (one per LG), in order.

        Each spec is ``(layers, rel_cuts, rel_tilings)``: the segment's layer
        names, its internal FLC positions relative to the segment start, and
        the Tiling Number of each internal FLG.  Everything the segment
        parser derives from an LFA is a pure function of this spec (plus the
        graph), so two segments with equal specs parse to identical fragments
        — the invariant behind the segment cache and delta-driven reuse.
        """
        order = self.computing_order
        flc_sorted = sorted(self.flc_set)
        tiling_numbers = self.tiling_numbers
        specs = []
        cut_index = 0
        num_cuts = len(flc_sorted)
        for start, end in self.lg_ranges():
            # flc_sorted is consumed left to right (LG ranges are ascending
            # and DRAM Cuts are FLCs too), so one pass over the cuts serves
            # every segment.
            while cut_index < num_cuts and flc_sorted[cut_index] <= start:
                cut_index += 1
            first = cut_index
            while cut_index < num_cuts and flc_sorted[cut_index] < end:
                cut_index += 1
            rel_cuts = tuple(c - start for c in flc_sorted[first:cut_index])
            rel_tilings = (
                tiling_numbers[start],
                *[tiling_numbers[start + rel] for rel in rel_cuts],
            )
            specs.append((order[start:end], rel_cuts, rel_tilings))
        return specs

    # ----------------------------------------------------------- constructors
    @classmethod
    def unfused(cls, graph: WorkloadGraph, tiling_number: int = 1) -> "LFA":
        """The no-fusion scheme: every layer is its own FLG and LG.

        This is the initial solution of the LFA exploration stage
        (Sec. V-C1); ``tiling_number`` applies uniformly to every
        single-layer group.
        """
        order = tuple(graph.topological_order())
        n = len(order)
        cuts = frozenset(range(1, n))
        tilings = {0: tiling_number, **{cut: tiling_number for cut in cuts}}
        return cls(
            computing_order=order,
            flc_set=cuts,
            dram_cut_set=cuts,
            tiling_numbers=tilings,
        )

    @classmethod
    def fully_fused(cls, graph: WorkloadGraph, tiling_number: int = 1) -> "LFA":
        """A single FLG/LG covering the whole network (useful in tests)."""
        order = tuple(graph.topological_order())
        return cls(
            computing_order=order,
            flc_set=frozenset(),
            dram_cut_set=frozenset(),
            tiling_numbers={0: tiling_number},
        )

    # ---------------------------------------------------------------- deltas
    def identity_segment_map(self, changed: tuple[int, ...] = ()) -> tuple[int, ...]:
        """Segment map for a move that keeps the LG partition, marking
        ``changed`` LG indices as touched (see :class:`LFADelta`)."""
        num_lgs = len(self.lg_ranges())
        return tuple(-1 if i in changed else i for i in range(num_lgs))

    # ---------------------------------------------------------------- utility
    def describe(self) -> str:
        """Compact human-readable form, mirroring the paper's Fig. 4 notation."""
        flgs = self.flg_layers()
        lg_ranges = self.lg_ranges()
        parts = []
        for flg_index, ((start, _end), layers) in enumerate(zip(self.flg_ranges(), flgs)):
            tiling = self.tiling_numbers[start]
            parts.append(f"[{', '.join(layers)}]:{tiling}")
        lg_part = " | ".join(
            ", ".join(self.computing_order[a:b]) for a, b in lg_ranges
        )
        return "FLGs " + " ".join(parts) + " ; LGs " + lg_part


@dataclass(frozen=True)
class LFADelta:
    """Which plan segments an LFA operator move touched (paper Sec. V-C1).

    Every LFA operator perturbs at most a couple of LGs; the delta records,
    for each LG of the *new* LFA, which LG of the ``parent`` LFA it is
    provably identical to (same layers, same internal cuts, same Tiling
    Numbers) — or ``-1`` when the segment changed and must be re-parsed.
    The incremental plan builder uses this to reuse the parent plan's
    :class:`~repro.notation.segments.PlanSegment` fragments directly; the
    mapping is *verified* against the segment specs before reuse, so a wrong
    delta can cost time but never correctness.
    """

    operator: str
    parent: LFA
    segment_map: tuple[int, ...]

    @property
    def changed_segments(self) -> tuple[int, ...]:
        """New-LFA LG indices that must be re-parsed."""
        return tuple(i for i, j in enumerate(self.segment_map) if j < 0)
