"""Layer-Fusion-related Attributes (LFA) of the Tensor-centric Notation.

The LFA fixes the coarse structure of a schedule: the serial computing order
of the layers, where the order is cut into Fine-grained Layer-fusion Groups
(FLGs), which of those cuts also force a round trip through DRAM (DRAM Cuts,
delimiting Layer-fusion Groups, LGs), and the Tiling Number of every FLG.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import EncodingError
from repro.workloads.graph import WorkloadGraph


def stable_digest(*parts: object) -> str:
    """Process-independent hex digest of a tuple of canonical values.

    ``hash()`` is salted per interpreter, so every fingerprint in the
    notation layer goes through this helper instead: the digest is stable
    across processes, which lets parallel workers and on-disk artifacts agree
    on cache keys.
    """
    payload = repr(parts).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


@dataclass(frozen=True)
class LFA:
    """Layer-fusion attributes of one scheduling scheme.

    Attributes
    ----------
    computing_order:
        Dependency-respecting permutation of all layer names.
    flc_set:
        Cut positions (1 .. n_layers - 1); a cut at position ``p`` separates
        ``computing_order[p - 1]`` from ``computing_order[p]``.
    dram_cut_set:
        Subset of ``flc_set``; these cuts additionally force the dependency
        data crossing them through DRAM, delimiting the LGs.
    tiling_numbers:
        Tiling Number per FLG, keyed by the FLG's *start position* in the
        computing order (position 0 plus every FLC position).  Keying by
        start position keeps the mapping stable when other cuts move.
    """

    computing_order: tuple[str, ...]
    flc_set: frozenset[int] = frozenset()
    dram_cut_set: frozenset[int] = frozenset()
    tiling_numbers: dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------- validation
    def validate(self, graph: WorkloadGraph) -> None:
        """Raise :class:`EncodingError` if the LFA is structurally invalid."""
        n = len(self.computing_order)
        if n != len(graph):
            raise EncodingError(
                f"computing order has {n} layers, workload has {len(graph)}"
            )
        if not graph.is_valid_order(self.computing_order):
            raise EncodingError("computing order violates layer dependencies")
        for cut in self.flc_set:
            if not 1 <= cut <= n - 1:
                raise EncodingError(f"FLC position {cut} out of range 1..{n - 1}")
        if not self.dram_cut_set <= self.flc_set:
            raise EncodingError("DRAM Cut set must be a subset of the FLC set")
        expected_keys = {0} | set(self.flc_set)
        if set(self.tiling_numbers) != expected_keys:
            raise EncodingError(
                "tiling_numbers keys must be the FLG start positions "
                f"{sorted(expected_keys)}, got {sorted(self.tiling_numbers)}"
            )
        for start, tiling in self.tiling_numbers.items():
            if tiling <= 0:
                raise EncodingError(f"Tiling Number at position {start} must be positive")

    # -------------------------------------------------------------- identity
    def fingerprint(self) -> str:
        """Stable content digest of this LFA, usable as a cache key.

        Two LFAs with equal attributes share a fingerprint regardless of set
        or dict iteration order.  The digest is memoised on the instance, so
        callers must not mutate ``tiling_numbers`` after the first call (the
        exploration operators always build fresh LFAs).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = stable_digest(
                "lfa",
                self.computing_order,
                tuple(sorted(self.flc_set)),
                tuple(sorted(self.dram_cut_set)),
                tuple(sorted(self.tiling_numbers.items())),
            )
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # --------------------------------------------------------------- structure
    def flg_ranges(self) -> list[tuple[int, int]]:
        """Half-open (start, end) index ranges of the FLGs, in order."""
        return self._ranges(self.flc_set)

    def lg_ranges(self) -> list[tuple[int, int]]:
        """Half-open (start, end) index ranges of the LGs, in order."""
        return self._ranges(self.dram_cut_set)

    def _ranges(self, cuts: frozenset[int]) -> list[tuple[int, int]]:
        n = len(self.computing_order)
        boundaries = [0] + sorted(cuts) + [n]
        return [
            (boundaries[i], boundaries[i + 1])
            for i in range(len(boundaries) - 1)
            if boundaries[i] < boundaries[i + 1]
        ]

    def flg_layers(self) -> list[list[str]]:
        """Layer names of every FLG, in order."""
        return [list(self.computing_order[a:b]) for a, b in self.flg_ranges()]

    def lg_layers(self) -> list[list[str]]:
        """Layer names of every LG, in order."""
        return [list(self.computing_order[a:b]) for a, b in self.lg_ranges()]

    def flg_of_position(self, position: int) -> int:
        """Index of the FLG containing the layer at ``position`` in the order."""
        for flg_index, (start, end) in enumerate(self.flg_ranges()):
            if start <= position < end:
                return flg_index
        raise EncodingError(f"position {position} outside the computing order")

    def tiling_number_of_flg(self, flg_index: int) -> int:
        """Tiling Number of the FLG with the given index."""
        start, _ = self.flg_ranges()[flg_index]
        return self.tiling_numbers[start]

    # ----------------------------------------------------------- constructors
    @classmethod
    def unfused(cls, graph: WorkloadGraph, tiling_number: int = 1) -> "LFA":
        """The no-fusion scheme: every layer is its own FLG and LG.

        This is the initial solution of the LFA exploration stage
        (Sec. V-C1); ``tiling_number`` applies uniformly to every
        single-layer group.
        """
        order = tuple(graph.topological_order())
        n = len(order)
        cuts = frozenset(range(1, n))
        tilings = {0: tiling_number, **{cut: tiling_number for cut in cuts}}
        return cls(
            computing_order=order,
            flc_set=cuts,
            dram_cut_set=cuts,
            tiling_numbers=tilings,
        )

    @classmethod
    def fully_fused(cls, graph: WorkloadGraph, tiling_number: int = 1) -> "LFA":
        """A single FLG/LG covering the whole network (useful in tests)."""
        order = tuple(graph.topological_order())
        return cls(
            computing_order=order,
            flc_set=frozenset(),
            dram_cut_set=frozenset(),
            tiling_numbers={0: tiling_number},
        )

    # ---------------------------------------------------------------- utility
    def describe(self) -> str:
        """Compact human-readable form, mirroring the paper's Fig. 4 notation."""
        flgs = self.flg_layers()
        lg_ranges = self.lg_ranges()
        parts = []
        for flg_index, ((start, _end), layers) in enumerate(zip(self.flg_ranges(), flgs)):
            tiling = self.tiling_numbers[start]
            parts.append(f"[{', '.join(layers)}]:{tiling}")
        lg_part = " | ".join(
            ", ".join(self.computing_order[a:b]) for a, b in lg_ranges
        )
        return "FLGs " + " ".join(parts) + " ; LGs " + lg_part
