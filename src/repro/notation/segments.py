"""Segment-based incremental plan construction (stage-1 fast path).

Every LFA operator of the stage-1 annealer (paper Sec. V-C1) perturbs at
most one or two LGs, yet the seed parser rebuilds the whole
:class:`~repro.notation.plan.ComputePlan` per candidate.  This module splits
parsing along DRAM Cuts: an LG — the unit delimited by DRAM Cuts — is a
*plan segment*, and everything :func:`~repro.notation.parser.parse_lfa`
derives is attributable to exactly one segment:

* tiles, with segment-local indices and FLG numbers;
* DRAM tensors: weights and streamed network inputs of the segment's layers,
  cross-LG ifmap loads (attributed to the *consuming* segment — the producer
  only matters by name and by its graph-level ofmap size), and ofmap stores
  (attributed to the *producing* segment — a layer stores iff some consumer
  lies outside the segment);
* on-chip fmap lifetimes (producer and consumers share the LG by definition).

The single cross-segment coupling is the store-gating structure
(``src_store_tids``: a read-back load waits for another LG's stores), which
the assembler rebuilds from a global layer → store-tid map in one pass.

:func:`parse_segment` emits an immutable, content-keyed :class:`PlanSegment`
(cached in a per-graph LRU, ``REPRO_SEGMENT_CACHE``); :class:`PlanAssembler`
stitches segments into a ``ComputePlan`` through an *offset-indirect*
indirection table: position-independent :class:`_Fragment` array bundles
(cached by segment content key alone) are concatenated with vectorised
offset adds, and the plan's object views materialise lazily from the table
on first access.  The assembled plan is
bit-identical to ``parse_lfa``'s (asserted for random operator sequences by
``tests/test_segments.py``): segment tile ranges are disjoint and increasing,
so the parser's global ``(first_use, kind, position, tile_id)`` sort order
equals the concatenation of the per-segment sort orders, and the stable sort
keeps the generation-order tie-breaks identical within a segment.

The :class:`~repro.notation.lfa.LFADelta` produced by the LFA operators
tells the assembler which segments of the parent plan can be reused without
even computing a cache key; the mapping is verified against the segment
specs before reuse, so a wrong delta degrades to a cache lookup instead of a
wrong plan.
"""

from __future__ import annotations

import weakref

try:  # numpy is optional: stitching falls back to pure Python without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

from repro.core.caching import LRUCache, per_graph_lru, per_graph_stats
from repro.notation.lfa import LFA, LFADelta, stable_digest
from repro.notation.parser import (
    _ceil_div,
    _graph_static,
    plan_cache,
)
from repro.notation.plan import ComputePlan
from repro.tiling.partition import tile_flg
from repro.workloads.graph import WorkloadGraph

SegmentSpec = tuple  # (layers, rel_cuts, rel_tilings) — see LFA.segment_specs()


def segment_key(spec: SegmentSpec) -> str:
    """Stable content digest of one segment spec (per-graph cache key)."""
    return stable_digest("segment", *spec)


class PlanSegment:
    """Immutable parse result of one LG, in segment-local coordinates.

    Tile indices, tensor ids and lifetimes are all relative to the segment
    start; :class:`PlanAssembler` re-bases them when stitching.  A segment is
    a pure function of its spec and the workload graph, so instances are
    shared freely across plans and LFAs through the segment LRU.
    """

    __slots__ = (
        "key",
        "layers",
        "rel_cuts",
        "rel_tilings",
        "feasible",
        "infeasibility_reason",
        "infeasible_dep_rank",
        "num_flgs",
        "num_tiles",
        "num_tensors",
        "tiles",
        "specs",
        "onchip",
        "layer_tilings",
        "flg_of_layer",
        "required_loads",
        "store_tids",
        "stores_of_layer",
        "load_sources",
    )

    def matches(self, spec: SegmentSpec) -> bool:
        """Whether this segment was parsed from exactly this spec."""
        return (
            self.layers == spec[0]
            and self.rel_cuts == spec[1]
            and self.rel_tilings == spec[2]
        )


def parse_segment(graph: WorkloadGraph, spec: SegmentSpec, key: str | None = None) -> PlanSegment:
    """Parse one LG into a :class:`PlanSegment` (segment-local coordinates).

    Mirrors every loop of :func:`~repro.notation.parser.parse_lfa` restricted
    to the segment's layers; see the module docstring for why the restriction
    is exact.
    """
    static = _graph_static(graph)
    layers_of = static.layers
    preds_of = static.preds
    succs_of = static.succs
    dep_tiled = static.dep_tiled

    layers, rel_cuts, rel_tilings = spec
    n = len(layers)
    member_pos = {name: index for index, name in enumerate(layers)}

    boundaries = [0, *rel_cuts, n]
    flg_ranges = [
        (boundaries[i], boundaries[i + 1]) for i in range(len(boundaries) - 1)
    ]
    flg_of_layer: dict[str, int] = {}
    for flg_index, (start, end) in enumerate(flg_ranges):
        for name in layers[start:end]:
            flg_of_layer[name] = flg_index

    segment = PlanSegment.__new__(PlanSegment)
    segment.key = key if key is not None else segment_key(spec)
    segment.layers = layers
    segment.rel_cuts = rel_cuts
    segment.rel_tilings = rel_tilings
    segment.num_flgs = len(flg_ranges)

    # ---------------------------------------------------------------- tilings
    layer_tilings = {}
    flg_tile_counts: list[int] = []
    for flg_index, (start, end) in enumerate(flg_ranges):
        tilings = tile_flg(graph, list(layers[start:end]), rel_tilings[flg_index])
        layer_tilings.update(tilings)
        flg_tile_counts.append(next(iter(tilings.values())).num_tiles)
    segment.layer_tilings = layer_tilings
    segment.flg_of_layer = flg_of_layer

    # ----------------------------------------------------------- feasibility
    # Same-FLG deps are always segment-internal (FLGs never span DRAM Cuts);
    # the dep rank lets the assembler report the globally first violation,
    # matching the seed parser's iteration order over graph.dependencies().
    segment.feasible = True
    segment.infeasibility_reason = ""
    segment.infeasible_dep_rank = -1
    for rank, dep in enumerate(static.deps):
        flg_p = flg_of_layer.get(dep.producer)
        if flg_p is None or flg_of_layer.get(dep.consumer) != flg_p:
            continue
        if not dep.tiled and flg_tile_counts[flg_p] > 1:
            segment.feasible = False
            segment.infeasibility_reason = (
                f"untiled dependency {dep.producer} -> {dep.consumer} inside an FLG "
                f"with Tiling Number > 1"
            )
            segment.infeasible_dep_rank = rank
            segment.num_tiles = 0
            segment.num_tensors = 0
            segment.tiles = ()
            segment.specs = ()
            segment.onchip = ()
            segment.required_loads = ()
            segment.store_tids = ()
            segment.stores_of_layer = {}
            segment.load_sources = ()
            return segment

    # ---------------------------------------------------------- tile sequence
    # Local tiles are (layer, tile_id, local_flg_index, macs, vector_ops);
    # the local index is the tuple's position.
    tiles: list[tuple] = []
    layer_tile_indices: dict[str, list[int]] = {}
    for flg_index, (start, end) in enumerate(flg_ranges):
        flg_tilings = [(name, layer_tilings[name]) for name in layers[start:end]]
        for name, _tiling in flg_tilings:
            layer_tile_indices[name] = []
        for tile_id in range(flg_tile_counts[flg_index]):
            for name, tiling in flg_tilings:
                index = len(tiles)
                tiles.append(
                    (name, tile_id, flg_index, tiling.macs_per_tile, tiling.vector_ops_per_tile)
                )
                layer_tile_indices[name].append(index)
    segment.tiles = tuple(tiles)
    segment.num_tiles = len(tiles)

    # ----------------------------------------------------------- DRAM tensors
    # Same scratch-tuple shape as the seed parser: (first_use, kind_rank,
    # layer, tile_id, num_bytes, last_use, source_layer), all indices local.
    specs: list[tuple] = []

    for name in layers:
        layer = layers_of[name]
        if layer.weight_bytes > 0:
            indices = layer_tile_indices[name]
            specs.append((indices[0], 0, name, None, layer.weight_bytes, indices[-1], None))

    for name in layers:
        predecessors = preds_of[name]
        tiling = layer_tilings[name]
        num_tiles = tiling.num_tiles
        indices = layer_tile_indices[name]

        if not predecessors:
            ifmap_bytes = tiling.ifmap_tile_bytes
            for tile_id in range(num_tiles):
                use = indices[tile_id]
                specs.append((use, 1, name, tile_id, ifmap_bytes, use, None))
            continue

        for producer_name in predecessors:
            if producer_name in member_pos:
                continue  # same LG: served on chip
            producer = layers_of[producer_name]
            if dep_tiled[(producer_name, name)] and num_tiles > 1:
                per_tile_bytes = _ceil_div(producer.ofmap_bytes, num_tiles)
                for tile_id in range(num_tiles):
                    use = indices[tile_id]
                    specs.append((use, 1, name, tile_id, per_tile_bytes, use, producer_name))
            else:
                specs.append(
                    (indices[0], 1, name, None, producer.ofmap_bytes, indices[-1], producer_name)
                )

    for name in layers:
        successors = succs_of[name]
        crosses_lg = any(s not in member_pos for s in successors)
        if successors and not crosses_lg:
            continue
        layer = layers_of[name]
        indices = layer_tile_indices[name]
        num_tiles = layer_tilings[name].num_tiles
        per_tile_bytes = _ceil_div(layer.ofmap_bytes, num_tiles)
        for tile_id in range(num_tiles):
            produce = indices[tile_id]
            specs.append((produce, 2, name, tile_id, per_tile_bytes, produce, None))

    # Segment tile ranges are disjoint in the global plan, so sorting locally
    # by (first_use, kind, position, tile_id) and concatenating per segment
    # reproduces the seed parser's global sort (the stable sort preserves the
    # same generation-order tie-breaks).
    sort_keys = [
        (spec[0], spec[1], member_pos[spec[2]], -1 if spec[3] is None else spec[3])
        for spec in specs
    ]
    spec_order = sorted(range(len(specs)), key=sort_keys.__getitem__)
    specs = [specs[index] for index in spec_order]
    segment.specs = tuple(specs)
    segment.num_tensors = len(specs)

    stores_of_layer: dict[str, list[int]] = {}
    store_tids: list[int] = []
    required_loads: list[list[int]] = [[] for _ in tiles]
    load_sources: list[tuple[int, str]] = []
    for tid, spec_row in enumerate(specs):
        if spec_row[1] != 2:
            required_loads[spec_row[0]].append(tid)
            if spec_row[6] is not None:
                load_sources.append((tid, spec_row[6]))
        else:
            stores_of_layer.setdefault(spec_row[2], []).append(tid)
            store_tids.append(tid)
    segment.required_loads = tuple(tuple(tids) for tids in required_loads)
    segment.store_tids = tuple(store_tids)
    segment.stores_of_layer = {
        name: tuple(tids) for name, tids in stores_of_layer.items()
    }
    segment.load_sources = tuple(load_sources)

    # -------------------------------------------------- on-chip fmap lifetimes
    onchip: list[tuple[int, int, int, str]] = []
    for name in layers:
        intra_lg_consumers = [s for s in succs_of[name] if s in member_pos]
        if not intra_lg_consumers:
            continue
        tiling = layer_tilings[name]
        flg_of_name = flg_of_layer[name]
        indices = layer_tile_indices[name]
        for tile_id in range(tiling.num_tiles):
            start = indices[tile_id]
            end = start
            for consumer_name in intra_lg_consumers:
                same_flg = flg_of_layer[consumer_name] == flg_of_name
                if same_flg and dep_tiled[(name, consumer_name)]:
                    candidate = layer_tile_indices[consumer_name][tile_id]
                else:
                    candidate = layer_tile_indices[consumer_name][-1]
                if candidate > end:
                    end = candidate
            onchip.append((start, end, tiling.ofmap_tile_bytes, f"{name}#{tile_id}"))
    segment.onchip = tuple(onchip)
    return segment


class _Fragment:
    """One segment's plan contribution in *position-independent* form.

    Everything the stitcher concatenates is held as segment-local numpy
    arrays plus exact Python-int totals: re-basing a fragment to its global
    offsets is a vectorised ``array + offset`` at stitch time instead of an
    object rebuild.  Since nothing here depends on where the segment lands
    in a plan, fragments are cached by segment content key alone — a
    segment that shifts when an upstream LG changes size hits this cache
    unconditionally.
    """

    __slots__ = (
        "is_load",
        "num_bytes",
        "first_use",
        "last_use",
        "req_starts",
        "req_flat",
        "n_req",
        "iv_start",
        "iv_end",
        "iv_bytes",
        "store_tids",
        "sum_bytes",
        "sum_load_bytes",
        "sum_store_bytes",
        "sum_macs",
        "sum_ops",
    )


def _segment_arrays(segment: PlanSegment) -> _Fragment:
    """Build the position-independent array bundle of one segment."""
    fragment = _Fragment.__new__(_Fragment)
    specs = segment.specs
    fragment.is_load = _np.asarray([row[1] != 2 for row in specs], dtype=bool)
    fragment.num_bytes = _np.asarray([row[4] for row in specs], dtype=_np.int64)
    fragment.first_use = _np.asarray([row[0] for row in specs], dtype=_np.int64)
    fragment.last_use = _np.asarray([row[5] for row in specs], dtype=_np.int64)
    req_flat: list[int] = []
    req_starts: list[int] = []
    for tids in segment.required_loads:
        req_starts.append(len(req_flat))
        req_flat.extend(tids)
    fragment.req_starts = _np.asarray(req_starts, dtype=_np.int64)
    fragment.req_flat = _np.asarray(req_flat, dtype=_np.int64)
    fragment.n_req = len(req_flat)
    onchip = segment.onchip
    fragment.iv_start = _np.asarray([row[0] for row in onchip], dtype=_np.int64)
    fragment.iv_end = _np.asarray([row[1] for row in onchip], dtype=_np.int64)
    fragment.iv_bytes = _np.asarray([row[2] for row in onchip], dtype=_np.int64)
    fragment.store_tids = _np.asarray(segment.store_tids, dtype=_np.int64)
    sum_bytes = 0
    sum_load_bytes = 0
    for row in specs:
        sum_bytes += row[4]
        if row[1] != 2:
            sum_load_bytes += row[4]
    fragment.sum_bytes = sum_bytes
    fragment.sum_load_bytes = sum_load_bytes
    fragment.sum_store_bytes = sum_bytes - sum_load_bytes
    sum_macs = 0
    sum_ops = 0
    for _layer, _tile_id, _flg, macs, vops in segment.tiles:
        sum_macs += macs
        sum_ops += 2 * macs + vops
    fragment.sum_macs = sum_macs
    fragment.sum_ops = sum_ops
    return fragment


# ---------------------------------------------------------------- LRU caches
_SEGMENT_CACHES: "weakref.WeakKeyDictionary[WorkloadGraph, tuple[int, LRUCache]]" = (
    weakref.WeakKeyDictionary()
)
_FRAGMENT_CACHES: "weakref.WeakKeyDictionary[WorkloadGraph, tuple[int, LRUCache]]" = (
    weakref.WeakKeyDictionary()
)


def segment_cache(graph: WorkloadGraph) -> LRUCache:
    """The per-graph segment LRU (``REPRO_SEGMENT_CACHE``, 0 disables)."""
    return per_graph_lru(_SEGMENT_CACHES, graph, "SEGMENT", 4096)


def fragment_cache(graph: WorkloadGraph) -> LRUCache:
    """The per-graph fragment LRU (shares ``REPRO_SEGMENT_CACHE``).

    Keyed by segment content key *only*: fragments are position-independent
    (local arrays; the stitcher re-bases them with vectorised offset adds),
    so a segment shifted by an upstream move hits this cache outright —
    there is at most one fragment per distinct segment.
    """
    return per_graph_lru(_FRAGMENT_CACHES, graph, "SEGMENT", 24576)


def segment_cache_stats(graph: WorkloadGraph) -> dict:
    """Hit/miss statistics of the per-graph segment cache."""
    return per_graph_stats(_SEGMENT_CACHES, graph)


def fragment_cache_stats(graph: WorkloadGraph) -> dict:
    """Hit/miss statistics of the per-graph fragment cache."""
    return per_graph_stats(_FRAGMENT_CACHES, graph)


# Per-graph counters of the offset-indirect stitch path: how many segment
# stitches computed a fresh fragment (``rebased_segments``) versus reusing a
# cached position-independent one (``rebase_reuse``).  Surfaced through
# ``--cache-stats``.
_ASSEMBLER_COUNTERS: "weakref.WeakKeyDictionary[WorkloadGraph, tuple[int, dict]]" = (
    weakref.WeakKeyDictionary()
)


def _assembler_counters(graph: WorkloadGraph) -> dict:
    entry = _ASSEMBLER_COUNTERS.get(graph)
    if entry is None or entry[0] != graph.version:
        entry = (graph.version, {"rebased_segments": 0, "rebase_reuse": 0})
        _ASSEMBLER_COUNTERS[graph] = entry
    return entry[1]


def assembler_stats(graph: WorkloadGraph) -> dict:
    """Offset-indirect assembly counters of one graph (for ``--cache-stats``)."""
    return dict(_assembler_counters(graph))


# Per-graph forced-spill profile backing the allocator's per-budget floor:
# one row per producer with at least one *untiled* consumer dependency.
_FORCED_SPILL: "weakref.WeakKeyDictionary[WorkloadGraph, tuple[int, tuple]]" = (
    weakref.WeakKeyDictionary()
)


def forced_spill_profile(graph: WorkloadGraph) -> tuple[tuple[int, int], ...]:
    """``(ofmap_bytes, forced_dram_bytes)`` rows for budget-forced spills.

    A producer with an *untiled* consumer dependency can never stream that
    tensor tile by tile: inside one FLG the segment is infeasible unless the
    tile count is 1 (see the feasibility rule in :func:`parse_segment`), and
    in every remaining placement the full ofmap is either alive on chip at
    once (the on-chip lifetime of an untiled or cross-FLG consumer extends
    to the consumer's last tile) or round-tripped through DRAM (a cross-LG
    untiled load always moves the whole producer ofmap).  So once a buffer
    budget drops below the producer's ``ofmap_bytes``, every schedule whose
    peak fits that budget must spill it: a store plus a reload for an
    interior producer, just the reload for an output layer (its store is
    already compulsory traffic).  Rows are sorted by descending threshold;
    :func:`repro.core.roofline.budget_schedule_floor` charges every row
    whose threshold exceeds the budget.
    """
    entry = _FORCED_SPILL.get(graph)
    if entry is not None and entry[0] == graph.version:
        return entry[1]
    static = _graph_static(graph)
    untiled_producers = {dep.producer for dep in static.deps if not dep.tiled}
    outputs = set(graph.output_layers())
    rows = []
    for producer in sorted(untiled_producers):
        ofmap_bytes = static.layers[producer].ofmap_bytes
        if ofmap_bytes <= 0:
            continue
        spill_bytes = ofmap_bytes if producer in outputs else 2 * ofmap_bytes
        rows.append((ofmap_bytes, spill_bytes))
    profile = tuple(sorted(rows, reverse=True))
    _FORCED_SPILL[graph] = (graph.version, profile)
    return profile


# Weak per-graph map of LFA fingerprint → assembled plan: lets delta-driven
# assembly find the parent plan even when the caller bypasses the plan LRU
# (plans stay visible here exactly as long as something else keeps them
# alive, so this adds no retention).
_ASSEMBLED: "weakref.WeakKeyDictionary[WorkloadGraph, tuple[int, weakref.WeakValueDictionary]]" = (
    weakref.WeakKeyDictionary()
)


def _assembled_plans(graph: WorkloadGraph) -> "weakref.WeakValueDictionary":
    entry = _ASSEMBLED.get(graph)
    if entry is None or entry[0] != graph.version:
        entry = (graph.version, weakref.WeakValueDictionary())
        _ASSEMBLED[graph] = entry
    return entry[1]


# ------------------------------------------------------------------ assembler
class PlanAssembler:
    """Builds :class:`ComputePlan` objects from cached plan segments.

    One assembler serves one graph; construction is cheap (the LRUs are
    module-level, keyed per graph), so search stages may build them freely.
    """

    def __init__(self, graph: WorkloadGraph) -> None:
        self._graph = graph

    # ------------------------------------------------------------------ public
    def assemble(self, lfa: LFA, delta: LFADelta | None = None) -> ComputePlan:
        """Assemble the plan for ``lfa``, reusing segments where possible.

        ``delta`` (from an LFA operator) short-circuits cache lookups for
        segments provably shared with the parent plan; without it every
        segment goes through the content-keyed segment LRU.  The result is
        bit-identical to ``parse_lfa(graph, lfa)``.

        LFAs that arrive with a delta were built by an LFA operator from a
        valid parent and are valid by construction, so full validation only
        runs on the delta-less path (matching ``parse_lfa``'s behaviour for
        hand-built LFAs).
        """
        graph = self._graph
        if delta is None:
            lfa.validate(graph)
        specs = lfa.segment_specs()
        parent_view = self._parent_view(delta, len(specs))
        seg_lru = segment_cache(graph)

        segments: list[PlanSegment] = []
        for lg_index, spec in enumerate(specs):
            segment = None
            if parent_view is not None:
                parent_index = delta.segment_map[lg_index]
                if 0 <= parent_index < len(parent_view):
                    candidate = parent_view[parent_index][0]
                    if candidate.matches(spec):
                        segment = candidate
            if segment is None:
                key = segment_key(spec)
                segment = seg_lru.get(key)
                if segment is None:
                    segment = parse_segment(graph, spec, key)
                    seg_lru.put(key, segment)
            segments.append(segment)

        plan = self._stitch(lfa, segments)
        _assembled_plans(graph)[lfa.fingerprint()] = plan
        return plan

    # ---------------------------------------------------------------- internal
    def _parent_view(self, delta: LFADelta | None, num_segments: int):
        if delta is None or len(delta.segment_map) != num_segments:
            return None
        parent_key = delta.parent.fingerprint()
        parent_plan = plan_cache(self._graph).peek(parent_key)
        if parent_plan is None:
            parent_plan = _assembled_plans(self._graph).get(parent_key)
            if parent_plan is None:
                return None
        return parent_plan.segment_view

    def _stitch(self, lfa: LFA, segments: list[PlanSegment]) -> ComputePlan:
        graph = self._graph

        worst_rank = None
        worst_reason = ""
        for segment in segments:
            if segment.feasible:
                continue
            if worst_rank is None or segment.infeasible_dep_rank < worst_rank:
                worst_rank = segment.infeasible_dep_rank
                worst_reason = segment.infeasibility_reason
        if worst_rank is not None:
            plan = ComputePlan(
                graph=graph, lfa=lfa, feasible=False, infeasibility_reason=worst_reason
            )
            plan.segment_view = tuple((segment, 0, 0) for segment in segments)
            return plan

        # O(#LGs) offset bookkeeping: the indirection table plus the layer
        # maps.  Everything per-tensor / per-tile is stitched from cached
        # position-independent fragments with vectorised offset adds below.
        view: list[tuple[PlanSegment, int, int]] = []
        tile_offsets: list[int] = []
        tid_offsets: list[int] = []
        tile_offset = 0
        tid_offset = 0
        layer_tilings: dict = {}
        flg_of_layer: dict[str, int] = {}
        lg_of_layer: dict[str, int] = {}
        running_flg = 0
        for lg_index, segment in enumerate(segments):
            view.append((segment, tile_offset, tid_offset))
            tile_offsets.append(tile_offset)
            tid_offsets.append(tid_offset)
            tile_offset += segment.num_tiles
            tid_offset += segment.num_tensors
            layer_tilings.update(segment.layer_tilings)
            for name, flg in segment.flg_of_layer.items():
                flg_of_layer[name] = running_flg + flg
                lg_of_layer[name] = lg_index
            running_flg += segment.num_flgs
        num_tensors = tid_offset

        stores_of_layer: dict[str, tuple[int, ...]] = {}
        for segment, offset in zip(segments, tid_offsets):
            for name, tids in segment.stores_of_layer.items():
                stores_of_layer[name] = tuple(offset + tid for tid in tids)
        src_store_tids: list[tuple[int, ...]] = [()] * num_tensors
        for segment, offset in zip(segments, tid_offsets):
            for tid, source_layer in segment.load_sources:
                src_store_tids[offset + tid] = stores_of_layer.get(source_layer, ())

        plan = ComputePlan(
            graph=graph,
            lfa=lfa,
            feasible=True,
            layer_tilings=layer_tilings,
            flg_of_layer=flg_of_layer,
            lg_of_layer=lg_of_layer,
            num_flgs=running_flg,
            num_lgs=len(segments),
        )
        plan.segment_view = tuple(view)

        if _np is None:
            # Pure-Python fallback: prefill the flat lists the evaluation
            # engine needs directly from the segment locals (the object
            # views stay lazy either way).
            is_load: list[bool] = []
            num_bytes: list[int] = []
            first_use: list[int] = []
            last_use: list[int] = []
            store_tids: list[int] = []
            for segment, t_off, n_off in view:
                for row in segment.specs:
                    is_load.append(row[1] != 2)
                    num_bytes.append(row[4])
                    first_use.append(t_off + row[0])
                    last_use.append(t_off + row[5])
                store_tids.extend(n_off + tid for tid in segment.store_tids)
            plan.__dict__["tensor_arrays"] = (is_load, num_bytes, first_use, last_use)
            plan.__dict__["store_structure"] = (store_tids, src_store_tids)
            return plan

        counters = _assembler_counters(graph)
        frag_lru = fragment_cache(graph)
        fragments: list[_Fragment] = []
        for segment in segments:
            fragment = frag_lru.get(segment.key)
            if fragment is None:
                fragment = _segment_arrays(segment)
                frag_lru.put(segment.key, fragment)
                counters["rebased_segments"] += 1
            else:
                counters["rebase_reuse"] += 1
            fragments.append(fragment)

        tile_off = _np.asarray(tile_offsets, dtype=_np.int64)
        tid_off = _np.asarray(tid_offsets, dtype=_np.int64)
        tens_counts = [fragment.is_load.size for fragment in fragments]
        tile_counts = [segment.num_tiles for segment in segments]
        req_counts = [fragment.n_req for fragment in fragments]
        iv_counts = [fragment.iv_start.size for fragment in fragments]
        store_counts = [fragment.store_tids.size for fragment in fragments]

        tens_rep = _np.repeat(tile_off, tens_counts)
        plan.__dict__["tensor_np"] = (
            _np.concatenate([fragment.is_load for fragment in fragments]),
            _np.concatenate([fragment.num_bytes for fragment in fragments]),
            _np.concatenate([fragment.first_use for fragment in fragments]) + tens_rep,
            _np.concatenate([fragment.last_use for fragment in fragments]) + tens_rep,
        )

        flat_offsets = []
        flat_offset = 0
        for count in req_counts:
            flat_offsets.append(flat_offset)
            flat_offset += count
        req_starts = _np.concatenate(
            [fragment.req_starts for fragment in fragments]
        ) + _np.repeat(_np.asarray(flat_offsets, dtype=_np.int64), tile_counts)
        req_flat = _np.concatenate(
            [fragment.req_flat for fragment in fragments]
        ) + _np.repeat(tid_off, req_counts)
        plan.__dict__["req_csr"] = (req_starts, req_flat)

        iv_rep = _np.repeat(tile_off, iv_counts)
        plan.__dict__["onchip_np"] = (
            _np.concatenate([fragment.iv_start for fragment in fragments]) + iv_rep,
            _np.concatenate([fragment.iv_end for fragment in fragments]) + iv_rep,
            _np.concatenate([fragment.iv_bytes for fragment in fragments]),
        )

        store_tids_arr = _np.concatenate(
            [fragment.store_tids for fragment in fragments]
        ) + _np.repeat(tid_off, store_counts)
        plan.__dict__["store_structure"] = (store_tids_arr.tolist(), src_store_tids)

        plan.__dict__["total_dram_bytes"] = sum(f.sum_bytes for f in fragments)
        plan.__dict__["total_dram_load_bytes"] = sum(f.sum_load_bytes for f in fragments)
        plan.__dict__["total_dram_store_bytes"] = sum(f.sum_store_bytes for f in fragments)
        plan.__dict__["total_macs"] = sum(f.sum_macs for f in fragments)
        plan.__dict__["total_ops"] = sum(f.sum_ops for f in fragments)
        return plan


def build_plan_cached(
    graph: WorkloadGraph, lfa: LFA, delta: LFADelta | None = None
) -> ComputePlan:
    """Incremental counterpart of :func:`parse_lfa_cached`.

    Fronts the same per-graph plan LRU (so both paths share plan objects per
    LFA fingerprint) and assembles misses from cached segments instead of a
    full re-parse.  This is the stage-1 hot path.
    """
    cache = plan_cache(graph)
    key = lfa.fingerprint()
    plan = cache.get(key)
    if plan is None:
        plan = PlanAssembler(graph).assemble(lfa, delta)
        cache.put(key, plan)
    return plan
