"""Segment-based incremental plan construction (stage-1 fast path).

Every LFA operator of the stage-1 annealer (paper Sec. V-C1) perturbs at
most one or two LGs, yet the seed parser rebuilds the whole
:class:`~repro.notation.plan.ComputePlan` per candidate.  This module splits
parsing along DRAM Cuts: an LG — the unit delimited by DRAM Cuts — is a
*plan segment*, and everything :func:`~repro.notation.parser.parse_lfa`
derives is attributable to exactly one segment:

* tiles, with segment-local indices and FLG numbers;
* DRAM tensors: weights and streamed network inputs of the segment's layers,
  cross-LG ifmap loads (attributed to the *consuming* segment — the producer
  only matters by name and by its graph-level ofmap size), and ofmap stores
  (attributed to the *producing* segment — a layer stores iff some consumer
  lies outside the segment);
* on-chip fmap lifetimes (producer and consumers share the LG by definition).

The single cross-segment coupling is the store-gating structure
(``src_store_tids``: a read-back load waits for another LG's stores), which
the assembler rebuilds from a global layer → store-tid map in one pass.

:func:`parse_segment` emits an immutable, content-keyed :class:`PlanSegment`
(cached in a per-graph LRU, ``REPRO_SEGMENT_CACHE``); :class:`PlanAssembler`
stitches segments into a ``ComputePlan``, re-basing tile indices, tensor ids
and lifetimes via cached :class:`_Fragment` objects.  The assembled plan is
bit-identical to ``parse_lfa``'s (asserted for random operator sequences by
``tests/test_segments.py``): segment tile ranges are disjoint and increasing,
so the parser's global ``(first_use, kind, position, tile_id)`` sort order
equals the concatenation of the per-segment sort orders, and the stable sort
keeps the generation-order tie-breaks identical within a segment.

The :class:`~repro.notation.lfa.LFADelta` produced by the LFA operators
tells the assembler which segments of the parent plan can be reused without
even computing a cache key; the mapping is verified against the segment
specs before reuse, so a wrong delta degrades to a cache lookup instead of a
wrong plan.
"""

from __future__ import annotations

import weakref

from repro.core.caching import LRUCache, per_graph_lru, per_graph_stats
from repro.notation.dram_tensor import TensorKind
from repro.notation.lfa import LFA, LFADelta, stable_digest
from repro.notation.parser import (
    _ceil_div,
    _graph_static,
    _new_tensor,
    _new_tile,
    plan_cache,
)
from repro.notation.plan import BufferInterval, ComputePlan
from repro.tiling.partition import tile_flg
from repro.workloads.graph import WorkloadGraph

_KINDS = (TensorKind.WEIGHT, TensorKind.IFMAP, TensorKind.OFMAP)

SegmentSpec = tuple  # (layers, rel_cuts, rel_tilings) — see LFA.segment_specs()


def segment_key(spec: SegmentSpec) -> str:
    """Stable content digest of one segment spec (per-graph cache key)."""
    return stable_digest("segment", *spec)


class PlanSegment:
    """Immutable parse result of one LG, in segment-local coordinates.

    Tile indices, tensor ids and lifetimes are all relative to the segment
    start; :class:`PlanAssembler` re-bases them when stitching.  A segment is
    a pure function of its spec and the workload graph, so instances are
    shared freely across plans and LFAs through the segment LRU.
    """

    __slots__ = (
        "key",
        "layers",
        "rel_cuts",
        "rel_tilings",
        "feasible",
        "infeasibility_reason",
        "infeasible_dep_rank",
        "num_flgs",
        "num_tiles",
        "num_tensors",
        "tiles",
        "specs",
        "onchip",
        "layer_tilings",
        "flg_of_layer",
        "required_loads",
        "store_tids",
        "stores_of_layer",
        "load_sources",
    )

    def matches(self, spec: SegmentSpec) -> bool:
        """Whether this segment was parsed from exactly this spec."""
        return (
            self.layers == spec[0]
            and self.rel_cuts == spec[1]
            and self.rel_tilings == spec[2]
        )


def parse_segment(graph: WorkloadGraph, spec: SegmentSpec, key: str | None = None) -> PlanSegment:
    """Parse one LG into a :class:`PlanSegment` (segment-local coordinates).

    Mirrors every loop of :func:`~repro.notation.parser.parse_lfa` restricted
    to the segment's layers; see the module docstring for why the restriction
    is exact.
    """
    static = _graph_static(graph)
    layers_of = static.layers
    preds_of = static.preds
    succs_of = static.succs
    dep_tiled = static.dep_tiled

    layers, rel_cuts, rel_tilings = spec
    n = len(layers)
    member_pos = {name: index for index, name in enumerate(layers)}

    boundaries = [0, *rel_cuts, n]
    flg_ranges = [
        (boundaries[i], boundaries[i + 1]) for i in range(len(boundaries) - 1)
    ]
    flg_of_layer: dict[str, int] = {}
    for flg_index, (start, end) in enumerate(flg_ranges):
        for name in layers[start:end]:
            flg_of_layer[name] = flg_index

    segment = PlanSegment.__new__(PlanSegment)
    segment.key = key if key is not None else segment_key(spec)
    segment.layers = layers
    segment.rel_cuts = rel_cuts
    segment.rel_tilings = rel_tilings
    segment.num_flgs = len(flg_ranges)

    # ---------------------------------------------------------------- tilings
    layer_tilings = {}
    flg_tile_counts: list[int] = []
    for flg_index, (start, end) in enumerate(flg_ranges):
        tilings = tile_flg(graph, list(layers[start:end]), rel_tilings[flg_index])
        layer_tilings.update(tilings)
        flg_tile_counts.append(next(iter(tilings.values())).num_tiles)
    segment.layer_tilings = layer_tilings
    segment.flg_of_layer = flg_of_layer

    # ----------------------------------------------------------- feasibility
    # Same-FLG deps are always segment-internal (FLGs never span DRAM Cuts);
    # the dep rank lets the assembler report the globally first violation,
    # matching the seed parser's iteration order over graph.dependencies().
    segment.feasible = True
    segment.infeasibility_reason = ""
    segment.infeasible_dep_rank = -1
    for rank, dep in enumerate(static.deps):
        flg_p = flg_of_layer.get(dep.producer)
        if flg_p is None or flg_of_layer.get(dep.consumer) != flg_p:
            continue
        if not dep.tiled and flg_tile_counts[flg_p] > 1:
            segment.feasible = False
            segment.infeasibility_reason = (
                f"untiled dependency {dep.producer} -> {dep.consumer} inside an FLG "
                f"with Tiling Number > 1"
            )
            segment.infeasible_dep_rank = rank
            segment.num_tiles = 0
            segment.num_tensors = 0
            segment.tiles = ()
            segment.specs = ()
            segment.onchip = ()
            segment.required_loads = ()
            segment.store_tids = ()
            segment.stores_of_layer = {}
            segment.load_sources = ()
            return segment

    # ---------------------------------------------------------- tile sequence
    # Local tiles are (layer, tile_id, local_flg_index, macs, vector_ops);
    # the local index is the tuple's position.
    tiles: list[tuple] = []
    layer_tile_indices: dict[str, list[int]] = {}
    for flg_index, (start, end) in enumerate(flg_ranges):
        flg_tilings = [(name, layer_tilings[name]) for name in layers[start:end]]
        for name, _tiling in flg_tilings:
            layer_tile_indices[name] = []
        for tile_id in range(flg_tile_counts[flg_index]):
            for name, tiling in flg_tilings:
                index = len(tiles)
                tiles.append(
                    (name, tile_id, flg_index, tiling.macs_per_tile, tiling.vector_ops_per_tile)
                )
                layer_tile_indices[name].append(index)
    segment.tiles = tuple(tiles)
    segment.num_tiles = len(tiles)

    # ----------------------------------------------------------- DRAM tensors
    # Same scratch-tuple shape as the seed parser: (first_use, kind_rank,
    # layer, tile_id, num_bytes, last_use, source_layer), all indices local.
    specs: list[tuple] = []

    for name in layers:
        layer = layers_of[name]
        if layer.weight_bytes > 0:
            indices = layer_tile_indices[name]
            specs.append((indices[0], 0, name, None, layer.weight_bytes, indices[-1], None))

    for name in layers:
        predecessors = preds_of[name]
        tiling = layer_tilings[name]
        num_tiles = tiling.num_tiles
        indices = layer_tile_indices[name]

        if not predecessors:
            ifmap_bytes = tiling.ifmap_tile_bytes
            for tile_id in range(num_tiles):
                use = indices[tile_id]
                specs.append((use, 1, name, tile_id, ifmap_bytes, use, None))
            continue

        for producer_name in predecessors:
            if producer_name in member_pos:
                continue  # same LG: served on chip
            producer = layers_of[producer_name]
            if dep_tiled[(producer_name, name)] and num_tiles > 1:
                per_tile_bytes = _ceil_div(producer.ofmap_bytes, num_tiles)
                for tile_id in range(num_tiles):
                    use = indices[tile_id]
                    specs.append((use, 1, name, tile_id, per_tile_bytes, use, producer_name))
            else:
                specs.append(
                    (indices[0], 1, name, None, producer.ofmap_bytes, indices[-1], producer_name)
                )

    for name in layers:
        successors = succs_of[name]
        crosses_lg = any(s not in member_pos for s in successors)
        if successors and not crosses_lg:
            continue
        layer = layers_of[name]
        indices = layer_tile_indices[name]
        num_tiles = layer_tilings[name].num_tiles
        per_tile_bytes = _ceil_div(layer.ofmap_bytes, num_tiles)
        for tile_id in range(num_tiles):
            produce = indices[tile_id]
            specs.append((produce, 2, name, tile_id, per_tile_bytes, produce, None))

    # Segment tile ranges are disjoint in the global plan, so sorting locally
    # by (first_use, kind, position, tile_id) and concatenating per segment
    # reproduces the seed parser's global sort (the stable sort preserves the
    # same generation-order tie-breaks).
    sort_keys = [
        (spec[0], spec[1], member_pos[spec[2]], -1 if spec[3] is None else spec[3])
        for spec in specs
    ]
    spec_order = sorted(range(len(specs)), key=sort_keys.__getitem__)
    specs = [specs[index] for index in spec_order]
    segment.specs = tuple(specs)
    segment.num_tensors = len(specs)

    stores_of_layer: dict[str, list[int]] = {}
    store_tids: list[int] = []
    required_loads: list[list[int]] = [[] for _ in tiles]
    load_sources: list[tuple[int, str]] = []
    for tid, spec_row in enumerate(specs):
        if spec_row[1] != 2:
            required_loads[spec_row[0]].append(tid)
            if spec_row[6] is not None:
                load_sources.append((tid, spec_row[6]))
        else:
            stores_of_layer.setdefault(spec_row[2], []).append(tid)
            store_tids.append(tid)
    segment.required_loads = tuple(tuple(tids) for tids in required_loads)
    segment.store_tids = tuple(store_tids)
    segment.stores_of_layer = {
        name: tuple(tids) for name, tids in stores_of_layer.items()
    }
    segment.load_sources = tuple(load_sources)

    # -------------------------------------------------- on-chip fmap lifetimes
    onchip: list[tuple[int, int, int, str]] = []
    for name in layers:
        intra_lg_consumers = [s for s in succs_of[name] if s in member_pos]
        if not intra_lg_consumers:
            continue
        tiling = layer_tilings[name]
        flg_of_name = flg_of_layer[name]
        indices = layer_tile_indices[name]
        for tile_id in range(tiling.num_tiles):
            start = indices[tile_id]
            end = start
            for consumer_name in intra_lg_consumers:
                same_flg = flg_of_layer[consumer_name] == flg_of_name
                if same_flg and dep_tiled[(name, consumer_name)]:
                    candidate = layer_tile_indices[consumer_name][tile_id]
                else:
                    candidate = layer_tile_indices[consumer_name][-1]
                if candidate > end:
                    end = candidate
            onchip.append((start, end, tiling.ofmap_tile_bytes, f"{name}#{tile_id}"))
    segment.onchip = tuple(onchip)
    return segment


class _Fragment:
    """One segment re-based to its global offsets, ready to concatenate.

    Re-basing builds the plan-level :class:`~repro.notation.plan.ComputeTile`
    and :class:`~repro.notation.dram_tensor.DRAMTensor` objects, which is the
    bulk of the remaining assembly cost — so fragments are cached per
    (segment, offsets): in a stable anneal every segment *before* the touched
    one keeps its offsets and hits this cache outright.
    """

    __slots__ = (
        "tiles",
        "tensors",
        "is_load",
        "num_bytes",
        "first_use",
        "last_use",
        "required_loads",
        "intervals",
        "store_tids",
        "stores_of_layer",
        "load_sources",
    )


def _rebase_segment(
    segment: PlanSegment,
    tile_offset: int,
    flg_offset: int,
    lg_index: int,
    tid_offset: int,
) -> _Fragment:
    fragment = _Fragment.__new__(_Fragment)
    fragment.tiles = [
        _new_tile(tile_offset + index, layer, tile_id, flg_offset + flg, lg_index, macs, vops)
        for index, (layer, tile_id, flg, macs, vops) in enumerate(segment.tiles)
    ]
    specs = segment.specs
    fragment.tensors = [
        _new_tensor(
            tid_offset + tid,
            _KINDS[row[1]],
            row[2],
            row[3],
            row[4],
            tile_offset + row[0],
            tile_offset + row[5],
            row[6],
        )
        for tid, row in enumerate(specs)
    ]
    fragment.is_load = [row[1] != 2 for row in specs]
    fragment.num_bytes = [row[4] for row in specs]
    fragment.first_use = [tile_offset + row[0] for row in specs]
    fragment.last_use = [tile_offset + row[5] for row in specs]
    fragment.required_loads = [
        [tid_offset + tid for tid in tids] for tids in segment.required_loads
    ]
    fragment.intervals = [
        BufferInterval(
            start_tile=tile_offset + start,
            end_tile=tile_offset + end,
            num_bytes=num_bytes,
            label=label,
        )
        for start, end, num_bytes, label in segment.onchip
    ]
    fragment.store_tids = [tid_offset + tid for tid in segment.store_tids]
    fragment.stores_of_layer = {
        name: tuple(tid_offset + tid for tid in tids)
        for name, tids in segment.stores_of_layer.items()
    }
    fragment.load_sources = [
        (tid_offset + tid, source) for tid, source in segment.load_sources
    ]
    return fragment


# ---------------------------------------------------------------- LRU caches
_SEGMENT_CACHES: "weakref.WeakKeyDictionary[WorkloadGraph, tuple[int, LRUCache]]" = (
    weakref.WeakKeyDictionary()
)
_FRAGMENT_CACHES: "weakref.WeakKeyDictionary[WorkloadGraph, tuple[int, LRUCache]]" = (
    weakref.WeakKeyDictionary()
)


def segment_cache(graph: WorkloadGraph) -> LRUCache:
    """The per-graph segment LRU (``REPRO_SEGMENT_CACHE``, 0 disables)."""
    return per_graph_lru(_SEGMENT_CACHES, graph, "SEGMENT", 4096)


def fragment_cache(graph: WorkloadGraph) -> LRUCache:
    """The per-graph re-based-fragment LRU (shares ``REPRO_SEGMENT_CACHE``).

    Sized well above the segment cache: one segment appears at many offsets
    (every move that changes a tile or tensor count shifts all downstream
    segments), and a fragment is only a segment-sized slice of a plan, so
    capacity is cheap relative to the plans it avoids rebuilding.  Bounded
    all the same — a fragment holds real tile/tensor objects, so an unbounded
    map would grow with the length of the anneal.
    """
    return per_graph_lru(_FRAGMENT_CACHES, graph, "SEGMENT", 24576)


def segment_cache_stats(graph: WorkloadGraph) -> dict:
    """Hit/miss statistics of the per-graph segment cache."""
    return per_graph_stats(_SEGMENT_CACHES, graph)


def fragment_cache_stats(graph: WorkloadGraph) -> dict:
    """Hit/miss statistics of the per-graph fragment cache."""
    return per_graph_stats(_FRAGMENT_CACHES, graph)


# Weak per-graph map of LFA fingerprint → assembled plan: lets delta-driven
# assembly find the parent plan even when the caller bypasses the plan LRU
# (plans stay visible here exactly as long as something else keeps them
# alive, so this adds no retention).
_ASSEMBLED: "weakref.WeakKeyDictionary[WorkloadGraph, tuple[int, weakref.WeakValueDictionary]]" = (
    weakref.WeakKeyDictionary()
)


def _assembled_plans(graph: WorkloadGraph) -> "weakref.WeakValueDictionary":
    entry = _ASSEMBLED.get(graph)
    if entry is None or entry[0] != graph.version:
        entry = (graph.version, weakref.WeakValueDictionary())
        _ASSEMBLED[graph] = entry
    return entry[1]


# ------------------------------------------------------------------ assembler
class PlanAssembler:
    """Builds :class:`ComputePlan` objects from cached plan segments.

    One assembler serves one graph; construction is cheap (the LRUs are
    module-level, keyed per graph), so search stages may build them freely.
    """

    def __init__(self, graph: WorkloadGraph) -> None:
        self._graph = graph

    # ------------------------------------------------------------------ public
    def assemble(self, lfa: LFA, delta: LFADelta | None = None) -> ComputePlan:
        """Assemble the plan for ``lfa``, reusing segments where possible.

        ``delta`` (from an LFA operator) short-circuits cache lookups for
        segments provably shared with the parent plan; without it every
        segment goes through the content-keyed segment LRU.  The result is
        bit-identical to ``parse_lfa(graph, lfa)``.

        LFAs that arrive with a delta were built by an LFA operator from a
        valid parent and are valid by construction, so full validation only
        runs on the delta-less path (matching ``parse_lfa``'s behaviour for
        hand-built LFAs).
        """
        graph = self._graph
        if delta is None:
            lfa.validate(graph)
        specs = lfa.segment_specs()
        parent_view = self._parent_view(delta, len(specs))
        seg_lru = segment_cache(graph)

        segments: list[PlanSegment] = []
        for lg_index, spec in enumerate(specs):
            segment = None
            if parent_view is not None:
                parent_index = delta.segment_map[lg_index]
                if 0 <= parent_index < len(parent_view):
                    candidate = parent_view[parent_index][0]
                    if candidate.matches(spec):
                        segment = candidate
            if segment is None:
                key = segment_key(spec)
                segment = seg_lru.get(key)
                if segment is None:
                    segment = parse_segment(graph, spec, key)
                    seg_lru.put(key, segment)
            segments.append(segment)

        plan = self._stitch(lfa, segments)
        _assembled_plans(graph)[lfa.fingerprint()] = plan
        return plan

    # ---------------------------------------------------------------- internal
    def _parent_view(self, delta: LFADelta | None, num_segments: int):
        if delta is None or len(delta.segment_map) != num_segments:
            return None
        parent_key = delta.parent.fingerprint()
        parent_plan = plan_cache(self._graph).peek(parent_key)
        if parent_plan is None:
            parent_plan = _assembled_plans(self._graph).get(parent_key)
            if parent_plan is None:
                return None
        return parent_plan.segment_view

    def _stitch(self, lfa: LFA, segments: list[PlanSegment]) -> ComputePlan:
        graph = self._graph

        worst_rank = None
        worst_reason = ""
        for segment in segments:
            if segment.feasible:
                continue
            if worst_rank is None or segment.infeasible_dep_rank < worst_rank:
                worst_rank = segment.infeasible_dep_rank
                worst_reason = segment.infeasibility_reason
        if worst_rank is not None:
            plan = ComputePlan(
                graph=graph, lfa=lfa, feasible=False, infeasibility_reason=worst_reason
            )
            plan.segment_view = tuple((segment, 0, 0) for segment in segments)
            return plan

        frag_lru = fragment_cache(graph)
        fragments: list[_Fragment] = []
        view: list[tuple[PlanSegment, int, int]] = []
        tile_offset = 0
        flg_offset = 0
        tid_offset = 0
        for lg_index, segment in enumerate(segments):
            frag_key = (segment.key, tile_offset, flg_offset, lg_index, tid_offset)
            fragment = frag_lru.get(frag_key)
            if fragment is None:
                fragment = _rebase_segment(segment, tile_offset, flg_offset, lg_index, tid_offset)
                frag_lru.put(frag_key, fragment)
            fragments.append(fragment)
            view.append((segment, tile_offset, tid_offset))
            tile_offset += segment.num_tiles
            flg_offset += segment.num_flgs
            tid_offset += segment.num_tensors

        tiles: list = []
        tensors: list = []
        intervals: list = []
        required_loads: list = []
        is_load: list = []
        num_bytes: list = []
        first_use: list = []
        last_use: list = []
        store_tids: list = []
        stores_of_layer: dict[str, tuple[int, ...]] = {}
        layer_tilings: dict = {}
        flg_of_layer: dict[str, int] = {}
        lg_of_layer: dict[str, int] = {}

        running_flg = 0
        for lg_index, (segment, fragment) in enumerate(zip(segments, fragments)):
            tiles.extend(fragment.tiles)
            tensors.extend(fragment.tensors)
            intervals.extend(fragment.intervals)
            required_loads.extend(fragment.required_loads)
            is_load.extend(fragment.is_load)
            num_bytes.extend(fragment.num_bytes)
            first_use.extend(fragment.first_use)
            last_use.extend(fragment.last_use)
            store_tids.extend(fragment.store_tids)
            stores_of_layer.update(fragment.stores_of_layer)
            layer_tilings.update(segment.layer_tilings)
            for name, flg in segment.flg_of_layer.items():
                flg_of_layer[name] = running_flg + flg
                lg_of_layer[name] = lg_index
            running_flg += segment.num_flgs

        src_store_tids: list[tuple[int, ...]] = [()] * len(tensors)
        for fragment in fragments:
            for tid, source_layer in fragment.load_sources:
                src_store_tids[tid] = stores_of_layer.get(source_layer, ())

        plan = ComputePlan(
            graph=graph,
            lfa=lfa,
            feasible=True,
            tiles=tiles,
            dram_tensors=tensors,
            onchip_intervals=intervals,
            layer_tilings=layer_tilings,
            tile_required_loads=required_loads,
            flg_of_layer=flg_of_layer,
            lg_of_layer=lg_of_layer,
            num_flgs=running_flg,
            num_lgs=len(segments),
        )
        plan.__dict__["tensor_arrays"] = (is_load, num_bytes, first_use, last_use)
        plan.__dict__["store_structure"] = (store_tids, src_store_tids)
        plan.segment_view = tuple(view)
        return plan


def build_plan_cached(
    graph: WorkloadGraph, lfa: LFA, delta: LFADelta | None = None
) -> ComputePlan:
    """Incremental counterpart of :func:`parse_lfa_cached`.

    Fronts the same per-graph plan LRU (so both paths share plan objects per
    LFA fingerprint) and assembles misses from cached segments instead of a
    full re-parse.  This is the stage-1 hot path.
    """
    cache = plan_cache(graph)
    key = lfa.fingerprint()
    plan = cache.get(key)
    if plan is None:
        plan = PlanAssembler(graph).assemble(lfa, delta)
        cache.put(key, plan)
    return plan
