"""DRAM-Load-and-Store-related Attributes (DLSA).

The DLSA fixes, for a given LFA parse, the order in which the DRAM channel
serves the tensors and each tensor's Living Duration ``(Start, End)``:

* loads (weights / ifmaps): ``Start`` is free (how early to prefetch) and
  ``End`` is fixed to the tile after the last use (release point);
* stores (ofmaps): ``Start`` is fixed to the producing tile and ``End`` is
  free (the deadline tile that may not begin before the store drained).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EncodingError
from repro.notation.dram_tensor import DRAMTensor
from repro.notation.lfa import stable_digest


@dataclass(frozen=True)
class DLSAMove:
    """One symbolic DLSA mutation, applied lazily.

    The DLSA operators historically materialised a full candidate ``DLSA``
    (an ``O(num_tensors)`` tuple/dict copy) per proposal.  The batched move
    engine scores many candidates per accepted move, so proposals are now
    cheap records describing *what changes*; :meth:`apply` materialises the
    candidate only when it is actually accepted (or needs a full co-sim).

    ``kind`` is ``"order"`` (move tensor ``tid`` from order position
    ``source`` to ``position``) or ``"living"`` (replace tensor ``tid``'s
    Living Duration with ``span``).
    """

    kind: str
    tid: int
    source: int = -1
    position: int = -1
    span: tuple[int, int] | None = None

    def apply(self, dlsa: "DLSA") -> "DLSA":
        """Materialise the candidate this move describes, from ``dlsa``."""
        if self.kind == "order":
            order = list(dlsa.order)
            order.pop(self.source)
            order.insert(self.position, self.tid)
            return DLSA(order=tuple(order), living=dict(dlsa.living))
        living = dict(dlsa.living)
        living[self.tid] = self.span
        return DLSA(order=dlsa.order, living=living)


@dataclass(frozen=True)
class DLSA:
    """DRAM load/store attributes of one scheduling scheme.

    Attributes
    ----------
    order:
        Permutation of DRAM-tensor ids giving the DRAM Tensor Order.
    living:
        Living Duration per tensor id as a ``(start, end)`` tuple of global
        compute-tile indices.
    """

    order: tuple[int, ...]
    living: dict[int, tuple[int, int]]

    def validate(self, tensors: list[DRAMTensor]) -> None:
        """Raise :class:`EncodingError` if the DLSA is inconsistent with ``tensors``."""
        tids = [t.tid for t in tensors]
        if sorted(self.order) != sorted(tids):
            raise EncodingError("DLSA order must be a permutation of all DRAM tensor ids")
        if set(self.living) != set(tids):
            raise EncodingError("DLSA living durations must cover every DRAM tensor")
        by_id = {t.tid: t for t in tensors}
        for tid, (start, end) in self.living.items():
            tensor = by_id[tid]
            if end < start:
                raise EncodingError(f"tensor {tid}: End {end} before Start {start}")
            if tensor.is_load:
                if end != tensor.default_end:
                    raise EncodingError(
                        f"load tensor {tid}: End is fixed at {tensor.default_end}, got {end}"
                    )
                if start > tensor.first_use:
                    raise EncodingError(
                        f"load tensor {tid}: Start {start} later than first use "
                        f"{tensor.first_use}"
                    )
                if start < 0:
                    raise EncodingError(f"load tensor {tid}: Start must be >= 0")
            else:
                if start != tensor.produce_tile:
                    raise EncodingError(
                        f"store tensor {tid}: Start is fixed at {tensor.produce_tile}, got {start}"
                    )
                if end <= tensor.produce_tile:
                    raise EncodingError(
                        f"store tensor {tid}: End must come after the producing tile"
                    )

    def fingerprint(self) -> str:
        """Stable content digest of this DLSA, usable as a cache key.

        Memoised on the instance; the exploration operators always build
        fresh DLSAs, so the ``living`` dict is never mutated after hashing.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = stable_digest("dlsa", self.order, tuple(sorted(self.living.items())))
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def start(self, tid: int) -> int:
        """Living Duration start of a tensor."""
        return self.living[tid][0]

    def end(self, tid: int) -> int:
        """Living Duration end of a tensor."""
        return self.living[tid][1]

    @classmethod
    def from_defaults(cls, tensors: list[DRAMTensor]) -> "DLSA":
        """Classical double-buffer DLSA (Sec. III-B baseline strategy).

        Tensors are ordered by the tile they serve (loads for tile ``t``
        interleaved with stores produced by tile ``t - 1``) and live for the
        minimal double-buffered window around their use.  A load that reads
        back data written by another LG's stores is pushed behind those
        stores so the default order is always executable.
        """
        last_store_tile: dict[str, int] = {}
        for tensor in tensors:
            if tensor.is_store:
                previous = last_store_tile.get(tensor.layer, -1)
                if tensor.first_use > previous:
                    last_store_tile[tensor.layer] = tensor.first_use

        # Sort keys are built eagerly with plain attribute access: this runs
        # once per parsed plan inside the stage-1 hot loop, and per-element
        # key callables dominate its cost otherwise.
        keys: list[tuple[int, int, int]] = []
        living: dict[int, tuple[int, int]] = {}
        for tensor in tensors:
            tid = tensor.tid
            first_use = tensor.first_use
            if tensor.kind.is_load:
                start = first_use - 1 if first_use > 0 else 0
                living[tid] = (start, tensor.last_use + 1)
                anchor = start
                source = tensor.source_layer
                if source is not None and source in last_store_tile:
                    # The data only exists once the producer finished storing.
                    produced = last_store_tile[source] + 1
                    if produced > anchor:
                        anchor = produced
                keys.append((anchor, 0, tid))  # loads go before drains
            else:
                living[tid] = (first_use, first_use + 1)
                keys.append((first_use, 1, tid))
        keys.sort()
        return cls(order=tuple(key[2] for key in keys), living=living)
