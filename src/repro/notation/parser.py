"""Parsing LFA encodings into compute plans (paper Sec. IV-A, Fig. 4).

The parse proceeds in the order the paper describes: first the computing
order is partitioned into LGs and FLGs and each FLG is tiled, producing the
global compute sequence; then every dependency is classified as on-chip
(inside one LG) or DRAM-crossing, which yields the canonical list of DRAM
tensors together with the fixed ends of their Living Durations.

Parsing is the per-candidate cost of the stage-1 annealer, so this module is
written for throughput: per-graph adjacency/layer snapshots are cached in a
weak dictionary, the scratch objects bypass dataclass ``__init__`` (their
values are valid by construction), and :func:`parse_lfa_cached` adds a
fingerprint-keyed LRU (``REPRO_PARSE_CACHE``) so revisited LFA states are
parsed once per search.

:func:`parse_lfa` is the *reference* construction path: one monolithic pass
over the whole LFA.  The stage-1 search builds plans through the segment
assembler instead (:mod:`repro.notation.segments`), which re-parses only the
LGs an operator move touched and stitches the rest from caches; the two
paths produce bit-identical plans (``tests/test_segments.py``).
"""

from __future__ import annotations

import weakref

from repro.core.caching import LRUCache, per_graph_lru, per_graph_stats
from repro.notation.dram_tensor import DRAMTensor, TensorKind
from repro.notation.lfa import LFA
from repro.notation.plan import BufferInterval, ComputePlan, ComputeTile
from repro.tiling.partition import tile_flg
from repro.workloads.graph import WorkloadGraph


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class _GraphStatic:
    """Per-graph snapshot of everything the parser reads repeatedly.

    The annealer parses thousands of LFAs of the *same* graph; going through
    the graph's query methods each time costs a list copy per call.  The
    snapshot records the graph's mutation version and is rebuilt when the
    graph changes underneath it.
    """

    __slots__ = ("layers", "preds", "succs", "dep_tiled", "deps", "version")

    def __init__(self, graph: WorkloadGraph) -> None:
        self.version = graph.version
        names = graph.layer_names()
        self.layers = {name: graph.layer(name) for name in names}
        self.preds = {name: tuple(graph.predecessors(name)) for name in names}
        self.succs = {name: tuple(graph.successors(name)) for name in names}
        self.deps = tuple(graph.dependencies())
        self.dep_tiled = {(d.producer, d.consumer): d.tiled for d in self.deps}


_GRAPH_STATIC: "weakref.WeakKeyDictionary[WorkloadGraph, _GraphStatic]" = (
    weakref.WeakKeyDictionary()
)


def _graph_static(graph: WorkloadGraph) -> _GraphStatic:
    static = _GRAPH_STATIC.get(graph)
    if static is None or static.version != graph.version:
        static = _GraphStatic(graph)
        _GRAPH_STATIC[graph] = static
    return static


def _new_tile(index, layer, tile_id, flg_index, lg_index, macs, vector_ops) -> ComputeTile:
    # Frozen-dataclass construction pays one object.__setattr__ per field;
    # the parser builds hundreds of tiles per candidate, all valid by
    # construction, so it installs the instance dict wholesale.
    tile = ComputeTile.__new__(ComputeTile)
    object.__setattr__(tile, "__dict__", {
        "index": index,
        "layer": layer,
        "tile_id": tile_id,
        "flg_index": flg_index,
        "lg_index": lg_index,
        "macs": macs,
        "vector_ops": vector_ops,
    })
    return tile


def _new_tensor(tid, kind, layer, tile_id, num_bytes, first_use, last_use, source_layer) -> DRAMTensor:
    # Same fast path as _new_tile: the specs were built with validated use
    # ranges, so DRAMTensor.__post_init__ has nothing left to check.
    tensor = DRAMTensor.__new__(DRAMTensor)
    object.__setattr__(tensor, "__dict__", {
        "tid": tid,
        "kind": kind,
        "layer": layer,
        "tile_id": tile_id,
        "num_bytes": num_bytes,
        "first_use": first_use,
        "last_use": last_use,
        "source_layer": source_layer,
    })
    return tensor


def parse_lfa(graph: WorkloadGraph, lfa: LFA) -> ComputePlan:
    """Parse the layer-fusion attributes into a :class:`ComputePlan`.

    Structural problems (invalid order, cuts out of range, ...) raise
    :class:`~repro.errors.EncodingError`; schemes that are well formed but
    cannot execute (an attention operand fused at a granularity finer than
    one tile) come back as an infeasible plan so search engines can penalise
    them instead of crashing.
    """
    lfa.validate(graph)
    static = _graph_static(graph)
    layers_of = static.layers
    preds_of = static.preds
    succs_of = static.succs
    dep_tiled = static.dep_tiled

    order = list(lfa.computing_order)
    position = {name: index for index, name in enumerate(order)}

    flg_ranges = lfa.flg_ranges()
    lg_ranges = lfa.lg_ranges()
    flg_of_layer: dict[str, int] = {}
    lg_of_layer: dict[str, int] = {}
    for flg_index, (start, end) in enumerate(flg_ranges):
        for name in order[start:end]:
            flg_of_layer[name] = flg_index
    for lg_index, (start, end) in enumerate(lg_ranges):
        for name in order[start:end]:
            lg_of_layer[name] = lg_index

    # ---------------------------------------------------------------- tilings
    layer_tilings = {}
    flg_tile_counts: list[int] = []
    for flg_index, (start, end) in enumerate(flg_ranges):
        layers = order[start:end]
        tilings = tile_flg(graph, layers, lfa.tiling_numbers[start])
        layer_tilings.update(tilings)
        flg_tile_counts.append(next(iter(tilings.values())).num_tiles)

    def _infeasible(reason: str) -> ComputePlan:
        return ComputePlan(graph=graph, lfa=lfa, feasible=False, infeasibility_reason=reason)

    for dep in static.deps:
        same_flg = flg_of_layer[dep.producer] == flg_of_layer[dep.consumer]
        if same_flg and not dep.tiled and flg_tile_counts[flg_of_layer[dep.producer]] > 1:
            return _infeasible(
                f"untiled dependency {dep.producer} -> {dep.consumer} inside an FLG "
                f"with Tiling Number > 1"
            )

    # --------------------------------------------------------- tile sequence
    tiles: list[ComputeTile] = []
    layer_tile_indices: dict[str, list[int]] = {}
    for flg_index, (start, end) in enumerate(flg_ranges):
        layers = order[start:end]
        flg_tilings = [(name, layer_tilings[name], lg_of_layer[name]) for name in layers]
        for name, _tiling, _lg in flg_tilings:
            layer_tile_indices[name] = []
        for tile_id in range(flg_tile_counts[flg_index]):
            for name, tiling, lg_index in flg_tilings:
                index = len(tiles)
                tiles.append(
                    _new_tile(
                        index,
                        name,
                        tile_id,
                        flg_index,
                        lg_index,
                        tiling.macs_per_tile,
                        tiling.vector_ops_per_tile,
                    )
                )
                layer_tile_indices[name].append(index)

    # ----------------------------------------------------------- DRAM tensors
    # Scratch specs are plain tuples (first_use, kind_rank, layer, tile_id,
    # num_bytes, last_use, source_layer) with the sort rank precomputed: this
    # loop runs ~1k times per stage-1 candidate and tuple construction beats
    # any scratch object.  Ranks: WEIGHT=0, IFMAP=1, OFMAP=2.
    specs: list[tuple] = []

    for name in order:
        layer = layers_of[name]
        if layer.weight_bytes > 0:
            indices = layer_tile_indices[name]
            specs.append((indices[0], 0, name, None, layer.weight_bytes, indices[-1], None))

    for name in order:
        predecessors = preds_of[name]
        tiling = layer_tilings[name]
        num_tiles = tiling.num_tiles
        indices = layer_tile_indices[name]

        if not predecessors:
            # Network input: streamed from DRAM tile by tile.
            ifmap_bytes = tiling.ifmap_tile_bytes
            for tile_id in range(num_tiles):
                use = indices[tile_id]
                specs.append((use, 1, name, tile_id, ifmap_bytes, use, None))
            continue

        lg_of_name = lg_of_layer[name]
        for producer_name in predecessors:
            if lg_of_layer[producer_name] == lg_of_name:
                continue  # served on chip
            producer = layers_of[producer_name]
            if dep_tiled[(producer_name, name)] and num_tiles > 1:
                per_tile_bytes = _ceil_div(producer.ofmap_bytes, num_tiles)
                for tile_id in range(num_tiles):
                    use = indices[tile_id]
                    specs.append((use, 1, name, tile_id, per_tile_bytes, use, producer_name))
            else:
                specs.append(
                    (indices[0], 1, name, None, producer.ofmap_bytes, indices[-1], producer_name)
                )

    for name in order:
        successors = succs_of[name]
        lg_of_name = lg_of_layer[name]
        crosses_lg = any(lg_of_layer[s] != lg_of_name for s in successors)
        if successors and not crosses_lg:
            continue
        layer = layers_of[name]
        indices = layer_tile_indices[name]
        num_tiles = layer_tilings[name].num_tiles
        per_tile_bytes = _ceil_div(layer.ofmap_bytes, num_tiles)
        for tile_id in range(num_tiles):
            produce = indices[tile_id]
            specs.append((produce, 2, name, tile_id, per_tile_bytes, produce, None))

    sort_keys = [
        (spec[0], spec[1], position[spec[2]], -1 if spec[3] is None else spec[3])
        for spec in specs
    ]
    spec_order = sorted(range(len(specs)), key=sort_keys.__getitem__)
    specs = [specs[index] for index in spec_order]

    # The canonical tensor list plus the flat per-tensor arrays the
    # evaluation engine runs on (pre-filling the plan's cached properties
    # below, so the engine never re-walks the objects).
    kinds = (TensorKind.WEIGHT, TensorKind.IFMAP, TensorKind.OFMAP)
    dram_tensors: list[DRAMTensor] = [
        _new_tensor(tid, kinds[spec[1]], spec[2], spec[3], spec[4], spec[0], spec[5], spec[6])
        for tid, spec in enumerate(specs)
    ]
    is_load_arr: list[bool] = [spec[1] != 2 for spec in specs]
    num_bytes_arr: list[int] = [spec[4] for spec in specs]
    first_use_arr: list[int] = [spec[0] for spec in specs]
    last_use_arr: list[int] = [spec[5] for spec in specs]

    stores_of_layer: dict[str, list[int]] = {}
    store_tids: list[int] = []
    tile_required_loads: list[list[int]] = [[] for _ in tiles]
    for tid, spec in enumerate(specs):
        if spec[1] != 2:
            tile_required_loads[spec[0]].append(tid)
        else:
            stores_of_layer.setdefault(spec[2], []).append(tid)
            store_tids.append(tid)
    src_store_tids: list[tuple[int, ...]] = [
        tuple(stores_of_layer.get(spec[6], ())) if (spec[1] != 2 and spec[6] is not None) else ()
        for spec in specs
    ]

    # -------------------------------------------------- on-chip fmap lifetimes
    onchip_intervals: list[BufferInterval] = []
    for name in order:
        lg_of_name = lg_of_layer[name]
        intra_lg_consumers = [
            s for s in succs_of[name] if lg_of_layer[s] == lg_of_name
        ]
        if not intra_lg_consumers:
            continue
        tiling = layer_tilings[name]
        flg_of_name = flg_of_layer[name]
        indices = layer_tile_indices[name]
        for tile_id in range(tiling.num_tiles):
            start = indices[tile_id]
            end = start
            for consumer_name in intra_lg_consumers:
                same_flg = flg_of_layer[consumer_name] == flg_of_name
                if same_flg and dep_tiled[(name, consumer_name)]:
                    candidate = layer_tile_indices[consumer_name][tile_id]
                else:
                    candidate = layer_tile_indices[consumer_name][-1]
                if candidate > end:
                    end = candidate
            onchip_intervals.append(
                BufferInterval(
                    start_tile=start,
                    end_tile=end,
                    num_bytes=tiling.ofmap_tile_bytes,
                    label=f"{name}#{tile_id}",
                )
            )

    plan = ComputePlan(
        graph=graph,
        lfa=lfa,
        feasible=True,
        tiles=tiles,
        dram_tensors=dram_tensors,
        onchip_intervals=onchip_intervals,
        layer_tilings=layer_tilings,
        tile_required_loads=tile_required_loads,
        flg_of_layer=flg_of_layer,
        lg_of_layer=lg_of_layer,
        num_flgs=len(flg_ranges),
        num_lgs=len(lg_ranges),
    )
    plan.__dict__["tensor_arrays"] = (is_load_arr, num_bytes_arr, first_use_arr, last_use_arr)
    plan.__dict__["store_structure"] = (store_tids, src_store_tids)
    return plan


# ------------------------------------------------------------- parse caching
_PARSE_CACHES: "weakref.WeakKeyDictionary[WorkloadGraph, tuple[int, LRUCache]]" = (
    weakref.WeakKeyDictionary()
)


def plan_cache(graph: WorkloadGraph) -> LRUCache:
    """The per-graph LFA-fingerprint → :class:`ComputePlan` LRU.

    Shared between :func:`parse_lfa_cached` (the reference path) and the
    segment assembler's :func:`~repro.notation.segments.build_plan_cached`
    (the stage-1 incremental path), so both hand out the *same* plan object
    for one LFA state.  Dropped when the graph mutates.
    """
    return per_graph_lru(_PARSE_CACHES, graph, "PARSE", 256)


def parse_lfa_cached(graph: WorkloadGraph, lfa: LFA) -> ComputePlan:
    """LRU-cached :func:`parse_lfa`, keyed by the LFA's stable fingerprint.

    Stage 1 revisits LFA states constantly (rejected moves return the search
    to the previous state; distinct move sequences reach the same scheme), so
    plans are shared per graph.  The cache is dropped when the graph mutates
    (see :attr:`WorkloadGraph.version`).  Callers must treat the returned
    plan as immutable — every consumer in the search stack already does.
    """
    cache = plan_cache(graph)
    key = lfa.fingerprint()
    plan = cache.get(key)
    if plan is None:
        plan = parse_lfa(graph, lfa)
        cache.put(key, plan)
    return plan


def parse_cache_stats(graph: WorkloadGraph) -> dict:
    """Hit/miss statistics of the per-graph parse cache (for benchmarks)."""
    return per_graph_stats(_PARSE_CACHES, graph)
