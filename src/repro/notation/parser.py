"""Parsing LFA encodings into compute plans (paper Sec. IV-A, Fig. 4).

The parse proceeds in the order the paper describes: first the computing
order is partitioned into LGs and FLGs and each FLG is tiled, producing the
global compute sequence; then every dependency is classified as on-chip
(inside one LG) or DRAM-crossing, which yields the canonical list of DRAM
tensors together with the fixed ends of their Living Durations.
"""

from __future__ import annotations

from repro.notation.dram_tensor import DRAMTensor, TensorKind
from repro.notation.lfa import LFA
from repro.notation.plan import BufferInterval, ComputePlan, ComputeTile
from repro.tiling.partition import tile_flg
from repro.workloads.graph import WorkloadGraph


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class _TensorSpec:
    """Mutable scratch record used while collecting DRAM tensors."""

    __slots__ = ("kind", "layer", "tile_id", "num_bytes", "first_use", "last_use", "source_layer")

    def __init__(
        self,
        kind: TensorKind,
        layer: str,
        tile_id: int | None,
        num_bytes: int,
        first_use: int,
        last_use: int,
        source_layer: str | None = None,
    ) -> None:
        self.kind = kind
        self.layer = layer
        self.tile_id = tile_id
        self.num_bytes = num_bytes
        self.first_use = first_use
        self.last_use = last_use
        self.source_layer = source_layer


def parse_lfa(graph: WorkloadGraph, lfa: LFA) -> ComputePlan:
    """Parse the layer-fusion attributes into a :class:`ComputePlan`.

    Structural problems (invalid order, cuts out of range, ...) raise
    :class:`~repro.errors.EncodingError`; schemes that are well formed but
    cannot execute (an attention operand fused at a granularity finer than
    one tile) come back as an infeasible plan so search engines can penalise
    them instead of crashing.
    """
    lfa.validate(graph)
    order = list(lfa.computing_order)
    position = {name: index for index, name in enumerate(order)}

    flg_ranges = lfa.flg_ranges()
    lg_ranges = lfa.lg_ranges()
    flg_of_layer: dict[str, int] = {}
    lg_of_layer: dict[str, int] = {}
    for flg_index, (start, end) in enumerate(flg_ranges):
        for name in order[start:end]:
            flg_of_layer[name] = flg_index
    for lg_index, (start, end) in enumerate(lg_ranges):
        for name in order[start:end]:
            lg_of_layer[name] = lg_index

    # ---------------------------------------------------------------- tilings
    layer_tilings = {}
    flg_tile_counts: list[int] = []
    for flg_index, (start, end) in enumerate(flg_ranges):
        layers = order[start:end]
        tilings = tile_flg(graph, layers, lfa.tiling_numbers[start])
        layer_tilings.update(tilings)
        flg_tile_counts.append(next(iter(tilings.values())).num_tiles)

    def _infeasible(reason: str) -> ComputePlan:
        return ComputePlan(graph=graph, lfa=lfa, feasible=False, infeasibility_reason=reason)

    for dep in graph.dependencies():
        same_flg = flg_of_layer[dep.producer] == flg_of_layer[dep.consumer]
        if same_flg and not dep.tiled and flg_tile_counts[flg_of_layer[dep.producer]] > 1:
            return _infeasible(
                f"untiled dependency {dep.producer} -> {dep.consumer} inside an FLG "
                f"with Tiling Number > 1"
            )

    # --------------------------------------------------------- tile sequence
    tiles: list[ComputeTile] = []
    tile_index: dict[tuple[str, int], int] = {}
    for flg_index, (start, end) in enumerate(flg_ranges):
        layers = order[start:end]
        for tile_id in range(flg_tile_counts[flg_index]):
            for name in layers:
                tiling = layer_tilings[name]
                index = len(tiles)
                tiles.append(
                    ComputeTile(
                        index=index,
                        layer=name,
                        tile_id=tile_id,
                        flg_index=flg_index,
                        lg_index=lg_of_layer[name],
                        macs=tiling.macs_per_tile,
                        vector_ops=tiling.vector_ops_per_tile,
                    )
                )
                tile_index[(name, tile_id)] = index

    layer_tile_indices = {
        name: [tile_index[(name, t)] for t in range(layer_tilings[name].num_tiles)]
        for name in order
    }

    # ----------------------------------------------------------- DRAM tensors
    specs: list[_TensorSpec] = []

    for name in order:
        layer = graph.layer(name)
        if layer.weight_bytes > 0:
            indices = layer_tile_indices[name]
            specs.append(
                _TensorSpec(
                    kind=TensorKind.WEIGHT,
                    layer=name,
                    tile_id=None,
                    num_bytes=layer.weight_bytes,
                    first_use=indices[0],
                    last_use=indices[-1],
                )
            )

    for name in order:
        predecessors = graph.predecessors(name)
        tiling = layer_tilings[name]
        num_tiles = tiling.num_tiles
        indices = layer_tile_indices[name]

        if not predecessors:
            # Network input: streamed from DRAM tile by tile.
            for tile_id in range(num_tiles):
                specs.append(
                    _TensorSpec(
                        kind=TensorKind.IFMAP,
                        layer=name,
                        tile_id=tile_id,
                        num_bytes=tiling.ifmap_tile_bytes,
                        first_use=indices[tile_id],
                        last_use=indices[tile_id],
                    )
                )
            continue

        for producer_name in predecessors:
            if lg_of_layer[producer_name] == lg_of_layer[name]:
                continue  # served on chip
            producer = graph.layer(producer_name)
            dep = graph.dependency(producer_name, name)
            if dep.tiled and num_tiles > 1:
                per_tile_bytes = _ceil_div(producer.ofmap_bytes, num_tiles)
                for tile_id in range(num_tiles):
                    specs.append(
                        _TensorSpec(
                            kind=TensorKind.IFMAP,
                            layer=name,
                            tile_id=tile_id,
                            num_bytes=per_tile_bytes,
                            first_use=indices[tile_id],
                            last_use=indices[tile_id],
                            source_layer=producer_name,
                        )
                    )
            else:
                specs.append(
                    _TensorSpec(
                        kind=TensorKind.IFMAP,
                        layer=name,
                        tile_id=None,
                        num_bytes=producer.ofmap_bytes,
                        first_use=indices[0],
                        last_use=indices[-1],
                        source_layer=producer_name,
                    )
                )

    for name in order:
        successors = graph.successors(name)
        crosses_lg = any(lg_of_layer[s] != lg_of_layer[name] for s in successors)
        if successors and not crosses_lg:
            continue
        layer = graph.layer(name)
        tiling = layer_tilings[name]
        num_tiles = tiling.num_tiles
        per_tile_bytes = _ceil_div(layer.ofmap_bytes, num_tiles)
        for tile_id in range(num_tiles):
            produce = tile_index[(name, tile_id)]
            specs.append(
                _TensorSpec(
                    kind=TensorKind.OFMAP,
                    layer=name,
                    tile_id=tile_id,
                    num_bytes=per_tile_bytes,
                    first_use=produce,
                    last_use=produce,
                )
            )

    kind_rank = {TensorKind.WEIGHT: 0, TensorKind.IFMAP: 1, TensorKind.OFMAP: 2}
    specs.sort(
        key=lambda s: (
            s.first_use,
            kind_rank[s.kind],
            position[s.layer],
            -1 if s.tile_id is None else s.tile_id,
        )
    )
    dram_tensors = [
        DRAMTensor(
            tid=tid,
            kind=spec.kind,
            layer=spec.layer,
            tile_id=spec.tile_id,
            num_bytes=spec.num_bytes,
            first_use=spec.first_use,
            last_use=spec.last_use,
            source_layer=spec.source_layer,
        )
        for tid, spec in enumerate(specs)
    ]

    tile_required_loads: list[list[int]] = [[] for _ in tiles]
    for tensor in dram_tensors:
        if tensor.is_load:
            tile_required_loads[tensor.first_use].append(tensor.tid)

    # -------------------------------------------------- on-chip fmap lifetimes
    onchip_intervals: list[BufferInterval] = []
    for name in order:
        intra_lg_consumers = [
            s for s in graph.successors(name) if lg_of_layer[s] == lg_of_layer[name]
        ]
        if not intra_lg_consumers:
            continue
        tiling = layer_tilings[name]
        for tile_id in range(tiling.num_tiles):
            start = tile_index[(name, tile_id)]
            end = start
            for consumer_name in intra_lg_consumers:
                dep = graph.dependency(name, consumer_name)
                same_flg = flg_of_layer[consumer_name] == flg_of_layer[name]
                if same_flg and dep.tiled:
                    end = max(end, tile_index[(consumer_name, tile_id)])
                else:
                    end = max(end, layer_tile_indices[consumer_name][-1])
            onchip_intervals.append(
                BufferInterval(
                    start_tile=start,
                    end_tile=end,
                    num_bytes=tiling.ofmap_tile_bytes,
                    label=f"{name}#{tile_id}",
                )
            )

    return ComputePlan(
        graph=graph,
        lfa=lfa,
        feasible=True,
        tiles=tiles,
        dram_tensors=dram_tensors,
        onchip_intervals=onchip_intervals,
        layer_tilings=layer_tilings,
        tile_required_loads=tile_required_loads,
        flg_of_layer=flg_of_layer,
        lg_of_layer=lg_of_layer,
        num_flgs=len(flg_ranges),
        num_lgs=len(lg_ranges),
    )
