"""DRAM tensors: the unit of DRAM communication scheduling.

Parsing the LFA produces the set of tensors that must be moved between DRAM
and the GBUF — weights, cross-LG (or network-boundary) ifmaps and ofmaps.
The DLSA then assigns each of them a position in the DRAM Tensor Order and a
Living Duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique


@unique
class TensorKind(Enum):
    """Kind of DRAM traffic a tensor represents."""

    WEIGHT = "weight"
    IFMAP = "ifmap"
    OFMAP = "ofmap"

    @property
    def is_load(self) -> bool:
        """Whether the transfer moves data from DRAM into the GBUF."""
        return self is not TensorKind.OFMAP


@dataclass(frozen=True)
class DRAMTensor:
    """One DRAM load or store request produced by LFA parsing.

    Attributes
    ----------
    tid:
        Canonical identifier (0-based, assigned in a deterministic order so
        the DLSA can reference tensors stably for a fixed LFA).
    kind:
        Weight / ifmap (loads) or ofmap (store).
    layer:
        Layer the data belongs to (for ifmaps: the *consuming* layer).
    tile_id:
        Tile index within the layer, or ``None`` for whole-layer tensors
        (weights, untiled ifmap operands).
    num_bytes:
        Transfer size in bytes.
    first_use / last_use:
        Global compute-tile indices delimiting the tensor's use: for loads,
        the first and last tiles that read the data; for stores, both equal
        the producing tile.
    source_layer:
        For cross-LG ifmap loads, the layer whose stored ofmap this load
        reads back; the load must wait for all of that layer's stores.
    """

    tid: int
    kind: TensorKind
    layer: str
    tile_id: int | None
    num_bytes: int
    first_use: int
    last_use: int
    source_layer: str | None = None

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if self.first_use < 0 or self.last_use < self.first_use:
            raise ValueError(
                f"invalid use range [{self.first_use}, {self.last_use}] for tensor {self.tid}"
            )

    @property
    def is_load(self) -> bool:
        """Whether the tensor is a load (weights, ifmaps)."""
        return self.kind.is_load

    @property
    def is_store(self) -> bool:
        """Whether the tensor is a store (ofmaps)."""
        return not self.kind.is_load

    @property
    def produce_tile(self) -> int:
        """For stores: global index of the tile producing the data."""
        return self.first_use

    @property
    def default_start(self) -> int:
        """Default (double-buffer) Living Duration start.

        Loads are prefetched one tile ahead of their first use; stores begin
        at the tile that produces them (this part is fixed by definition).
        """
        if self.is_load:
            return max(0, self.first_use - 1)
        return self.produce_tile

    @property
    def default_end(self) -> int:
        """Default (double-buffer) Living Duration end.

        Loads are released right after their last use (fixed by definition);
        stores must drain before the next tile starts.
        """
        if self.is_load:
            return self.last_use + 1
        return self.produce_tile + 1

    def describe(self) -> str:
        """Short human-readable name, e.g. ``W[conv1]`` or ``O[conv3#2]``."""
        prefix = {TensorKind.WEIGHT: "W", TensorKind.IFMAP: "I", TensorKind.OFMAP: "O"}[self.kind]
        suffix = "" if self.tile_id is None else f"#{self.tile_id}"
        return f"{prefix}[{self.layer}{suffix}]"
