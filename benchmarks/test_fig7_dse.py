"""Fig. 7: design-space exploration over DRAM bandwidth x buffer size.

The paper sweeps the 16 TOPS edge accelerator's memory system for every
workload and batch size and highlights (red envelope) the configurations
reaching the minimum latency.  The two insights to reproduce:

* at batch 1, adding DRAM bandwidth helps much more than adding buffer;
* with SoMa, the envelope forms a lower triangle — a larger buffer can
  substitute for DRAM bandwidth — which Cocco does not exhibit as strongly.
"""

from __future__ import annotations

import pytest

from benchmarks.common import FULL_MODE, light_config
from repro.analysis.dse import run_dse
from repro.hardware.accelerator import edge_accelerator
from repro.workloads.registry import build_workload

_BANDWIDTHS = [8.0, 16.0, 32.0, 64.0, 128.0] if FULL_MODE else [8.0, 16.0, 32.0]
_BUFFERS = [4.0, 8.0, 16.0, 32.0, 64.0] if FULL_MODE else [4.0, 8.0, 16.0]
_BATCHES = [1, 4, 16] if FULL_MODE else [1]


def _sweep(batch: int):
    graph = build_workload("resnet50", batch=batch)
    return run_dse(
        graph,
        edge_accelerator(),
        dram_bandwidths_gb_s=_BANDWIDTHS,
        buffer_sizes_mb=_BUFFERS,
        config=light_config(),
        seed=2025,
    )


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("batch", _BATCHES)
def test_fig7_dse_resnet50(benchmark, reporter, batch):
    result = benchmark.pedantic(_sweep, args=(batch,), rounds=1, iterations=1)

    reporter.line(f"Fig. 7 - DSE over DRAM bandwidth x buffer size (ResNet-50, batch {batch})")
    reporter.line(result.to_table("cocco"))
    reporter.line("")
    reporter.line(result.to_table("soma"))
    reporter.line("")
    reporter.line("SoMa minimum-latency envelope (within 2% of the best point):")
    for cell in result.envelope("soma"):
        reporter.line(
            f"  {cell.dram_bandwidth_gb_s:6.0f} GB/s  {cell.buffer_mb:5.0f} MB  "
            f"-> {cell.soma_latency_s * 1e3:8.3f} ms  (vs Cocco {cell.soma_advantage:.2f}x)"
        )

    # Insight 1: at batch 1 bandwidth dominates - raising the bandwidth at the
    # smallest buffer must help more than raising the buffer at the smallest
    # bandwidth.
    small = result.cell(_BANDWIDTHS[0], _BUFFERS[0]).soma_latency_s
    more_bandwidth = result.cell(_BANDWIDTHS[-1], _BUFFERS[0]).soma_latency_s
    more_buffer = result.cell(_BANDWIDTHS[0], _BUFFERS[-1]).soma_latency_s
    if batch == 1:
        assert more_bandwidth < small
        assert (small - more_bandwidth) >= (small - more_buffer)
    # SoMa (whose space includes every Cocco scheme) should match or beat
    # Cocco at most design points even with the sweep's reduced budget.
    slower_points = [c for c in result.cells if c.soma_latency_s > c.cocco_latency_s * 1.10]
    assert len(slower_points) <= len(result.cells) // 2
