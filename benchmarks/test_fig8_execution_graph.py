"""Fig. 8: practical execution-graph comparison (Cocco vs stage 1 vs stage 2).

The paper walks through ResNet-50 and GPT-2-XL-prefill execution graphs to
explain where SoMa's gains come from: stage 1 produces fewer, coarser tiles
and fuses more layers; stage 2 moves DRAM tensors into idle periods, reducing
the computing stalls.  This benchmark renders the same three execution graphs
(ASCII) and checks those directional claims.
"""

from __future__ import annotations

import pytest

from benchmarks.common import FULL_MODE, bench_config
from repro.analysis.execution_graph import build_execution_graph
from repro.baselines.cocco import CoccoScheduler
from repro.core.core_array import CoreArrayMapper
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.core.soma import SoMaScheduler
from repro.hardware.accelerator import cloud_accelerator, edge_accelerator
from repro.workloads.registry import build_workload

_CASES = [("resnet50", "edge", {})]
if FULL_MODE:
    _CASES.append(("gpt2-prefill", "cloud", {"variant": "xl", "seq_len": 1024}))
else:
    _CASES.append(("gpt2-prefill", "edge", {"variant": "small", "seq_len": 256}))


def _run(workload_name, platform, kwargs):
    accelerator = edge_accelerator() if platform == "edge" else cloud_accelerator()
    graph = build_workload(workload_name, batch=1, **kwargs)
    config = bench_config()
    mapper = CoreArrayMapper(accelerator)
    evaluator = ScheduleEvaluator(accelerator, mapper=mapper)

    cocco_scheduler = CoccoScheduler(accelerator, config, mapper=mapper)
    cocco = cocco_scheduler.schedule(graph)
    cocco_plan, cocco_dlsa = cocco_scheduler.parse(graph, cocco.encoding.lfa)
    cocco_graph = build_execution_graph(
        cocco_plan, cocco_dlsa, evaluator.evaluate(cocco_plan, cocco_dlsa, include_trace=True), "Cocco"
    )

    soma = SoMaScheduler(accelerator, config, mapper=mapper).schedule(graph)
    stage1_plan, stage1_dlsa = soma.stage1.encoding.parse(graph)
    if stage1_dlsa is None:
        stage1_dlsa = double_buffer_dlsa(stage1_plan)
    stage1_graph = build_execution_graph(
        stage1_plan,
        stage1_dlsa,
        evaluator.evaluate(stage1_plan, stage1_dlsa, include_trace=True),
        "SoMa stage 1",
    )
    stage2_graph = build_execution_graph(
        soma.plan,
        soma.dlsa,
        evaluator.evaluate(soma.plan, soma.dlsa, include_trace=True),
        "SoMa stage 2",
    )
    return cocco_graph, stage1_graph, stage2_graph


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("workload_name,platform,kwargs", _CASES)
def test_fig8_execution_graphs(benchmark, reporter, workload_name, platform, kwargs):
    cocco_graph, stage1_graph, stage2_graph = benchmark.pedantic(
        _run, args=(workload_name, platform, kwargs), rounds=1, iterations=1
    )

    reporter.line(f"Fig. 8 - execution graphs for {workload_name} on the {platform} platform")
    for graph in (cocco_graph, stage1_graph, stage2_graph):
        reporter.line("")
        reporter.line(graph.render_ascii(width=100))
        reporter.line(
            f"  compute stall {graph.compute_stall_s * 1e3:.3f} ms, "
            f"DRAM idle {graph.dram_idle_s * 1e3:.3f} ms, "
            f"groups {len(graph.groups)}"
        )

    # Directional claims of Sec. VII-B: stage 2 improves on stage 1 by moving
    # DRAM tensors into idle periods (so the compute stalls cannot grow), and
    # the final SoMa scheme keeps up with (usually beats) Cocco.
    assert stage2_graph.latency_s <= stage1_graph.latency_s * 1.001
    assert stage2_graph.latency_s <= cocco_graph.latency_s * 1.15
    assert stage2_graph.compute_stall_s <= stage1_graph.compute_stall_s * 1.05 + 1e-6
