"""Serving burst benchmark: admission control, deadlines, memo persistence.

Following the AI500 practice of reporting throughput *together with* tail
latency under load, this benchmark drives an over-capacity burst into a
one-worker :class:`~repro.serving.service.ScheduleService` with a tiny
admission queue and records what the queue did about it:

* the burst is **shed**, not absorbed: some requests are rejected
  immediately (``rejected`` provenance, sub-millisecond turnaround) and the
  accepted ones see a p95 bounded by the queue depth times the worst single
  search — not by the burst size;
* queued requests carrying a short ``deadline_ms`` **expire** instead of
  running after their usefulness has passed;
* accepted results are **bit-identical** to direct ``SoMaScheduler.schedule``
  calls, for different worker counts and queue sizes;
* after a restart with ``memo_path`` set, repeat traffic is served from the
  **persisted memo** with ``memo`` provenance and no search.
"""

from __future__ import annotations

import time

from repro.analysis.schedule_report import evaluation_to_payload
from repro.core.soma import SoMaScheduler
from repro.serving.protocol import ScheduleRequest
from repro.serving.service import ScheduleService, reset_worker_state
from repro.workloads.registry import build_workload

TINY_DECODE = (("context_len", 16), ("variant", "tiny"))

BURST_SIZE = 8
QUEUE_SIZE = 2


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _burst_request(seed: int, deadline_ms: float | None = None) -> ScheduleRequest:
    return ScheduleRequest(
        workload="gpt2-decode",
        batch=1,
        workload_kwargs=TINY_DECODE,
        seed=seed,
        fast=True,
        deadline_ms=deadline_ms,
        request_id=f"burst-{seed}",
    )


def _direct_evaluation(seed: int) -> dict:
    request = _burst_request(seed)
    graph = build_workload(
        request.workload, batch=request.batch, **request.workload_kwargs_dict
    )
    result = SoMaScheduler(request.build_accelerator(), request.build_config()).schedule(
        graph, seed=seed
    )
    return {
        "evaluation": evaluation_to_payload(result.evaluation),
        "stage1": evaluation_to_payload(result.stage1.evaluation),
        "stage2": evaluation_to_payload(result.stage2.evaluation),
    }


def test_serving_burst_shedding_and_memo_restart(reporter, tmp_path):
    memo_path = tmp_path / "serve-memo.json"
    burst = [_burst_request(seed) for seed in range(1, BURST_SIZE + 1)]

    reset_worker_state()
    with ScheduleService(workers=1, queue_size=QUEUE_SIZE, memo_path=memo_path) as service:
        burst_start = time.perf_counter()
        responses = service.schedule_many(burst)
        burst_wall = time.perf_counter() - burst_start

        accepted = [r for r in responses if r.ok]
        rejected = [r for r in responses if r.provenance == "rejected"]

        # Over-capacity traffic is shed at admission, with fast turnaround,
        # and the number that got in is bounded by in-flight + queue slots.
        assert rejected, "an over-capacity burst must see rejections"
        assert len(accepted) + len(rejected) == BURST_SIZE
        assert 1 <= len(accepted) <= 1 + QUEUE_SIZE
        reject_p95 = percentile([r.service_seconds for r in rejected], 0.95)
        assert reject_p95 < 0.05, f"rejections must be immediate, saw {reject_p95:.3f}s"

        # Accepted tail latency is bounded by the queue depth, not the burst:
        # a request admitted behind a full queue waits for at most
        # (queue slots + its own run) searches.
        accepted_latencies = [r.service_seconds for r in accepted]
        accepted_p50 = percentile(accepted_latencies, 0.50)
        accepted_p95 = percentile(accepted_latencies, 0.95)
        worst_search = max(r.search_seconds for r in accepted)
        p95_bound = (QUEUE_SIZE + 1) * worst_search * 1.5 + 1.0
        assert accepted_p95 <= p95_bound, (
            f"accepted p95 {accepted_p95:.2f}s exceeds the queue-depth bound "
            f"{p95_bound:.2f}s"
        )

        # Deadline phase: with the worker busy again, short-deadline
        # requests expire in the queue instead of running late.  Wait for
        # the lead request to leave the queue (earlier-deadline entries
        # would otherwise outrank it) before enqueueing the doomed ones.
        lead = service._submit(_burst_request(100))
        settle = time.monotonic() + 5.0
        while len(service._queue) and time.monotonic() < settle:
            time.sleep(0.005)
        doomed = [
            service._submit(_burst_request(100 + offset, deadline_ms=40.0))
            for offset in (1, 2)
        ]
        deadline_responses = [lead.result()] + [future.result() for future in doomed]
        expired = [r for r in deadline_responses if r.provenance == "expired"]
        assert deadline_responses[0].ok
        assert expired, "short queued deadlines must expire before dispatch"
        for response in expired:
            assert response.error_kind == "deadline"
        stats = service.stats()

    # Bit-identity for every accepted burst request, against the direct path.
    expected = {seed: _direct_evaluation(seed) for seed in
                sorted(int(r.request_id.split("-")[1]) for r in accepted)}
    for response in accepted:
        seed = int(response.request_id.split("-")[1])
        assert response.result["evaluation"] == expected[seed]["evaluation"]
        assert response.result["stage1"] == expected[seed]["stage1"]
        assert response.result["stage2"] == expected[seed]["stage2"]
    reset_worker_state()

    # Restart: the persisted memo answers the accepted seeds with no search.
    assert memo_path.exists()
    with ScheduleService(workers=1, queue_size=QUEUE_SIZE, memo_path=memo_path) as restarted:
        restart_stats = restarted.stats()
        repeat_responses = [
            restarted.schedule(_burst_request(int(r.request_id.split("-")[1])))
            for r in accepted
        ]
        memo_latencies = [r.service_seconds for r in repeat_responses]
    assert restart_stats["memo_persistence"]["reloaded_entries"] >= len(accepted)
    for before, after in zip(accepted, repeat_responses):
        assert after.provenance == "memo"
        assert after.search_seconds == 0.0
        assert after.result == before.result
    memo_p50 = percentile(memo_latencies, 0.50)
    memo_p95 = percentile(memo_latencies, 0.95)
    reset_worker_state()

    reporter.line(
        f"serving burst benchmark (workers=1, queue={QUEUE_SIZE}, burst={BURST_SIZE})"
    )
    reporter.line(
        f"{'phase':16s} {'count':>6s} {'p50 ms':>10s} {'p95 ms':>10s}"
    )
    reporter.line(
        f"{'accepted':16s} {len(accepted):>6d} {accepted_p50 * 1e3:>10.2f} "
        f"{accepted_p95 * 1e3:>10.2f}"
    )
    reporter.line(
        f"{'rejected':16s} {len(rejected):>6d} "
        f"{percentile([r.service_seconds for r in rejected], 0.5) * 1e3:>10.3f} "
        f"{reject_p95 * 1e3:>10.3f}"
    )
    reporter.line(
        f"{'memo-restart':16s} {len(memo_latencies):>6d} {memo_p50 * 1e3:>10.3f} "
        f"{memo_p95 * 1e3:>10.3f}"
    )
    reporter.line(
        f"burst wall {burst_wall:.2f}s; expired-in-queue {len(expired)}; "
        f"queue stats {stats['queue']}"
    )
    reporter.line("accepted results bit-identical to direct SoMaScheduler.schedule: OK")
    reporter.line(
        f"memo reloaded {restart_stats['memo_persistence']['reloaded_entries']} "
        f"entries from {memo_path.name} after restart"
    )


def test_burst_results_identical_across_workers_and_queue_sizes(reporter, tmp_path):
    """Admission control must never change *what* is computed."""
    expected = _direct_evaluation(7)
    reporter.line("burst bit-identity across (workers, queue_size)")
    for workers, queue_size in ((1, 1), (2, 4)):
        reset_worker_state()
        with ScheduleService(workers=workers, queue_size=queue_size) as service:
            response = service.schedule(_burst_request(7))
            assert response.ok
            assert response.result["evaluation"] == expected["evaluation"]
            assert response.result["stage1"] == expected["stage1"]
            assert response.result["stage2"] == expected["stage2"]
        reset_worker_state()
        reporter.line(
            f"  workers={workers} queue={queue_size}: bit-identical to direct schedule"
        )
