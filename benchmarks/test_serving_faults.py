"""Chaos benchmark: deterministic worker crashes under real serving load.

Reliability numbers only mean something when the failures are reproducible,
so this benchmark injects crashes through ``REPRO_FAULT_SPEC`` (a pure hash
of request identity and attempt — the same spec produces the same crash
pattern for any worker count) and asserts the self-healing contract end to
end:

* **every request reaches a terminal response** — success, or a typed
  ``worker_crash`` failure — within a bounded wall clock; no waiter hangs;
* the pool **respawns back to full health**: after the chaos run every
  worker process is alive and ``/healthz`` would answer 200 again;
* **accepted results are bit-identical** to direct
  ``SoMaScheduler.schedule`` calls — crashes and retries may change *when*
  a result arrives, never *what* is computed;
* this holds across worker counts (1 = in-process, 2/4 = real processes)
  and retry budgets (0 = fail fast, 2 = retries absorb most crashes).
"""

from __future__ import annotations

import time

from repro.analysis.schedule_report import evaluation_to_payload
from repro.core.soma import SoMaScheduler
from repro.serving.faults import FAULT_SPEC_ENV, parse_fault_spec
from repro.serving.protocol import ScheduleRequest
from repro.serving.service import ScheduleService, reset_worker_state
from repro.workloads.registry import build_workload

TINY_DECODE = (("context_len", 16), ("variant", "tiny"))

REQUESTS_PER_RUN = 10

#: (workers, retry budget, crash probability, clause seed) — crash rates
#: span the 10-30% band; the retries=0 row shows fail-fast, the retries=2
#: rows show the budget absorbing most crashes.  The p=0.1 row uses a clause
#: seed whose draw fires at least once for this request stream (the draw is
#: a pure hash, so this is knowable up front).
CHAOS_GRID = (
    (1, 2, 0.3, 1),
    (2, 0, 0.3, 1),
    (2, 2, 0.3, 1),
    (4, 2, 0.1, 5),
)


def _chaos_request(seed: int) -> ScheduleRequest:
    return ScheduleRequest(
        workload="gpt2-decode",
        batch=1,
        workload_kwargs=TINY_DECODE,
        seed=seed,
        fast=True,
        request_id=f"chaos-{seed}",
    )


def _direct_evaluation(seed: int) -> dict:
    request = _chaos_request(seed)
    graph = build_workload(
        request.workload, batch=request.batch, **request.workload_kwargs_dict
    )
    result = SoMaScheduler(request.build_accelerator(), request.build_config()).schedule(
        graph, seed=seed
    )
    return {
        "evaluation": evaluation_to_payload(result.evaluation),
        "stage1": evaluation_to_payload(result.stage1.evaluation),
        "stage2": evaluation_to_payload(result.stage2.evaluation),
    }


def _expected_first_attempt_crashes(spec: str, requests) -> int:
    """The injected crash pattern is a pure function — predict it exactly."""
    clause = parse_fault_spec(spec).clauses[0]
    return sum(
        clause.fires((r.workload, r.platform, r.seed, r.request_id, 0))
        for r in requests
    )


def test_serving_under_injected_crashes(reporter, monkeypatch):
    seeds = list(range(1, REQUESTS_PER_RUN + 1))
    expected = {seed: _direct_evaluation(seed) for seed in seeds}

    reporter.line(
        f"chaos benchmark: {REQUESTS_PER_RUN} requests per run, injected "
        "worker crashes (deterministic, REPRO_FAULT_SPEC)"
    )
    reporter.line(
        f"{'workers':>7s} {'retries':>7s} {'crash_p':>7s} {'ok':>4s} "
        f"{'crashed':>7s} {'re-runs':>7s} {'respawns':>8s} {'trips':>5s} "
        f"{'wall s':>7s}"
    )

    for workers, retries, crash_p, clause_seed in CHAOS_GRID:
        spec = f"crash:{crash_p}@seed={clause_seed}"
        monkeypatch.setenv(FAULT_SPEC_ENV, spec)
        requests = [_chaos_request(seed) for seed in seeds]
        predicted = _expected_first_attempt_crashes(spec, requests)

        reset_worker_state()
        started = time.perf_counter()
        with ScheduleService(workers=workers, retries=retries) as service:
            responses = service.schedule_many(requests)
            supervision = service.stats()["supervision"]
            health = service.health()
        wall = time.perf_counter() - started
        reset_worker_state()

        # Terminal outcomes for every request, in order, within bounded time.
        assert len(responses) == len(requests)
        assert [r.request_id for r in responses] == [r.request_id for r in requests]
        assert wall < 300.0, f"chaos run took {wall:.0f}s — something hung"
        accepted = [r for r in responses if r.ok]
        failed = [r for r in responses if not r.ok]
        for response in failed:
            assert response.error_kind == "worker_crash"
            assert response.retries == retries  # the whole budget was spent
        if retries == 0:
            # Fail-fast mode: exactly the predicted first-attempt crashes fail.
            assert len(failed) == predicted
        assert supervision["worker_crashes"] >= predicted > 0
        if retries > 0:
            assert supervision["retries"] >= 1
            assert any(r.retries > 0 for r in accepted), (
                "with a retry budget, some accepted result must have been "
                "saved by a retry"
            )
        if workers > 1:
            assert supervision["pool_respawns"] >= 1  # real processes died

        # The pool healed: every worker alive, health endpoint green again
        # (breakers may have tripped mid-run; cooldowns are long enough that
        # an open breaker at the end would show here — accept half_open/closed
        # as healthy because the worker underneath is alive).
        assert all(row["alive"] for row in health["worker_health"])

        # Chaos changes timing, never results: accepted payloads are
        # bit-identical to the direct scheduler.
        assert accepted, "some requests must survive a 10-30% crash rate"
        for response in accepted:
            seed = int(response.request_id.split("-")[1])
            assert response.result["evaluation"] == expected[seed]["evaluation"]
            assert response.result["stage1"] == expected[seed]["stage1"]
            assert response.result["stage2"] == expected[seed]["stage2"]

        trips = sum(b["trips"] for b in supervision["breakers"])
        reporter.line(
            f"{workers:>7d} {retries:>7d} {crash_p:>7.2f} {len(accepted):>4d} "
            f"{supervision['worker_crashes']:>7d} {supervision['retries']:>7d} "
            f"{supervision['pool_respawns']:>8d} {trips:>5d} {wall:>7.1f}"
        )

    reporter.line("accepted results bit-identical to direct SoMaScheduler.schedule: OK")
    reporter.line("every request terminal; pool respawned to full health after chaos")


def test_crash_pattern_is_identical_across_worker_counts(reporter, monkeypatch):
    """The same spec + request stream produces the same crash/retry pattern
    for 1, 2 and 4 workers — the determinism claim behind every number
    above."""
    monkeypatch.setenv(FAULT_SPEC_ENV, "crash:0.3@seed=1")
    seeds = list(range(30, 30 + REQUESTS_PER_RUN))
    patterns = {}
    for workers in (1, 2, 4):
        reset_worker_state()
        with ScheduleService(workers=workers, retries=1) as service:
            responses = service.schedule_many([_chaos_request(seed) for seed in seeds])
        reset_worker_state()
        patterns[workers] = [(r.ok, r.retries, r.error_kind) for r in responses]
    assert patterns[1] == patterns[2] == patterns[4]
    reporter.line(
        "per-request (ok, retries, error_kind) identical for workers=1/2/4: OK"
    )
    reporter.line(f"pattern: {patterns[1]}")
