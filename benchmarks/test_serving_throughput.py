"""Serving-layer load benchmark: throughput, latency percentiles, provenance.

A small load generator drives :class:`~repro.serving.service.ScheduleService`
the way HPC AI500 reports serving systems: requests/sec plus p50/p95 latency,
split by cache provenance.  Two properties are asserted rather than just
recorded:

* repeat requests (cross-request memo hits) are at least **5x** faster than
  their cold counterparts at the median;
* served results are **bit-identical** to a direct
  ``SoMaScheduler.schedule`` call with the same seed, for every worker
  count exercised (1 and 2).
"""

from __future__ import annotations

import time

from repro.analysis.schedule_report import evaluation_to_payload
from repro.core.soma import SoMaScheduler
from repro.serving.protocol import ScheduleRequest
from repro.serving.service import ScheduleService, reset_worker_state
from repro.workloads.registry import build_workload

TINY_DECODE = (("context_len", 32), ("variant", "tiny"))
TINY_PREFILL = (("seq_len", 32), ("variant", "tiny"))

#: The request mix: distinct (workload, batch, seed) points, all tiny-scale
#: so the cold phase stays CI-friendly.
REQUEST_MIX = [
    ScheduleRequest(
        workload="gpt2-decode", batch=1, workload_kwargs=TINY_DECODE, seed=11, fast=True
    ),
    ScheduleRequest(
        workload="gpt2-decode", batch=2, workload_kwargs=TINY_DECODE, seed=11, fast=True
    ),
    ScheduleRequest(
        workload="gpt2-prefill", batch=1, workload_kwargs=TINY_PREFILL, seed=11, fast=True
    ),
    ScheduleRequest(
        workload="gpt2-decode", batch=1, workload_kwargs=TINY_DECODE, seed=12, fast=True
    ),
]

REPEAT_PASSES = 5


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _drive(service: ScheduleService, requests) -> tuple[list[float], list]:
    latencies = []
    responses = []
    for request in requests:
        start = time.perf_counter()
        response = service.schedule(request)
        latencies.append(time.perf_counter() - start)
        assert response.ok, response.error
        responses.append(response)
    return latencies, responses


def _direct_evaluations() -> dict:
    expected = {}
    for request in REQUEST_MIX:
        graph = build_workload(
            request.workload, batch=request.batch, **request.workload_kwargs_dict
        )
        direct = SoMaScheduler(request.build_accelerator(), request.build_config()).schedule(
            graph, seed=request.seed
        )
        expected[(request.workload, request.batch, request.seed)] = {
            "evaluation": evaluation_to_payload(direct.evaluation),
            "stage1": evaluation_to_payload(direct.stage1.evaluation),
            "stage2": evaluation_to_payload(direct.stage2.evaluation),
        }
    return expected


def test_serving_throughput_and_bit_identity(reporter):
    expected = _direct_evaluations()

    reset_worker_state()
    with ScheduleService(workers=1) as service:
        cold_latencies, cold_responses = _drive(service, REQUEST_MIX)
        # First pass: every request runs a real search — cold, except the
        # seed-sweep duplicate of the first graph, which hits a warm worker.
        assert all(
            response.provenance in ("cold", "warm") for response in cold_responses
        )
        assert not any(response.provenance == "memo" for response in cold_responses)

        repeat_latencies: list[float] = []
        repeat_start = time.perf_counter()
        for _ in range(REPEAT_PASSES):
            latencies, responses = _drive(service, REQUEST_MIX)
            repeat_latencies.extend(latencies)
            assert all(response.provenance == "memo" for response in responses)
        repeat_wall = time.perf_counter() - repeat_start

        stats = service.stats()
        for request, response in zip(REQUEST_MIX, cold_responses):
            key = (request.workload, request.batch, request.seed)
            assert response.result["evaluation"] == expected[key]["evaluation"]
            assert response.result["stage1"] == expected[key]["stage1"]
            assert response.result["stage2"] == expected[key]["stage2"]
    reset_worker_state()

    cold_p50 = percentile(cold_latencies, 0.50)
    cold_p95 = percentile(cold_latencies, 0.95)
    repeat_p50 = percentile(repeat_latencies, 0.50)
    repeat_p95 = percentile(repeat_latencies, 0.95)
    repeat_rps = len(repeat_latencies) / repeat_wall if repeat_wall > 0 else float("inf")
    cold_rps = len(cold_latencies) / sum(cold_latencies)
    speedup = cold_p50 / repeat_p50 if repeat_p50 > 0 else float("inf")

    reporter.line("serving load benchmark (workers=1, tiny request mix)")
    reporter.line(
        f"{'phase':10s} {'requests':>9s} {'req/s':>10s} {'p50 ms':>10s} {'p95 ms':>10s}"
    )
    reporter.line(
        f"{'cold':10s} {len(cold_latencies):>9d} {cold_rps:>10.2f} "
        f"{cold_p50 * 1e3:>10.3f} {cold_p95 * 1e3:>10.3f}"
    )
    reporter.line(
        f"{'repeat':10s} {len(repeat_latencies):>9d} {repeat_rps:>10.2f} "
        f"{repeat_p50 * 1e3:>10.3f} {repeat_p95 * 1e3:>10.3f}"
    )
    reporter.line(f"repeat-vs-cold p50 speedup: {speedup:.1f}x (floor 5x)")
    reporter.line(
        "provenance counts: "
        + ", ".join(f"{k}={v}" for k, v in sorted(stats["provenance"].items()))
    )
    memo = stats["memo"]
    reporter.line(
        f"memo: size={memo['size']} hits={memo['hits']} misses={memo['misses']} "
        f"hit_rate={memo['hit_rate']:.1%}"
    )
    reporter.line("bit-identity vs direct SoMaScheduler.schedule: OK")

    assert speedup >= 5.0, (
        f"repeat-request p50 latency only {speedup:.1f}x better than cold "
        f"(cold {cold_p50 * 1e3:.2f} ms, repeat {repeat_p50 * 1e3:.2f} ms)"
    )


def test_served_results_identical_for_any_worker_count(reporter):
    expected = _direct_evaluations()
    reporter.line("served-vs-direct bit-identity by worker count")
    for workers in (1, 2):
        reset_worker_state()
        with ScheduleService(workers=workers) as service:
            _latencies, responses = _drive(service, REQUEST_MIX)
            for request, response in zip(REQUEST_MIX, responses):
                key = (request.workload, request.batch, request.seed)
                assert response.result["evaluation"] == expected[key]["evaluation"], (
                    f"served evaluation differs from direct schedule "
                    f"for {key} with workers={workers}"
                )
                assert response.result["stage1"] == expected[key]["stage1"]
                assert response.result["stage2"] == expected[key]["stage2"]
        reset_worker_state()
        reporter.line(f"  workers={workers}: {len(REQUEST_MIX)} requests bit-identical")
