"""Fig. 3: DRAM access vs. operation imbalance per layer and per Cocco tile.

The paper's figure shows four scatter plots (ResNet-50 / Transformer, per
layer / per tile) and argues that the per-tile clouds are markedly more
spread out towards the axes.  This benchmark regenerates the underlying
series and prints the spread / axis-hugging statistics for each plot.
"""

from __future__ import annotations

import pytest

from benchmarks.common import FULL_MODE, light_config
from repro.analysis.imbalance import (
    axis_hugging_fraction,
    layer_imbalance,
    spread_metric,
    tile_imbalance,
)
from repro.baselines.cocco import CoccoScheduler
from repro.hardware.accelerator import edge_accelerator
from repro.workloads.registry import build_workload

_WORKLOADS = [
    ("resnet50", {}),
    ("gpt2-prefill", {"variant": "small", "seq_len": 512 if FULL_MODE else 256}),
]


def _collect():
    accelerator = edge_accelerator()
    config = light_config()
    rows = []
    for name, kwargs in _WORKLOADS:
        graph = build_workload(name, batch=1, **kwargs)
        scheduler = CoccoScheduler(accelerator, config)
        result = scheduler.schedule(graph)
        plan, _ = scheduler.parse(graph, result.encoding.lfa)
        rows.append(
            {
                "workload": graph.name,
                "layers": layer_imbalance(graph),
                "tiles": tile_imbalance(plan),
            }
        )
    return rows


@pytest.mark.benchmark(group="fig3")
def test_fig3_imbalance(benchmark, reporter):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    reporter.line("Fig. 3 - normalised DRAM access vs. operations, per layer and per Cocco tile")
    reporter.line(
        f"{'workload':32s} {'granularity':12s} {'points':>7s} {'spread':>8s} {'axis-hugging':>13s}"
    )
    for row in rows:
        for granularity, points in (("layer", row["layers"]), ("tile", row["tiles"])):
            reporter.line(
                f"{row['workload']:32s} {granularity:12s} {len(points):>7d} "
                f"{spread_metric(points):>8.3f} {axis_hugging_fraction(points) * 100:>12.1f}%"
            )
    # The paper's qualitative claim: tiles are more spread out than layers.
    for row in rows:
        assert axis_hugging_fraction(row["tiles"]) >= axis_hugging_fraction(row["layers"])
