"""Search-throughput benchmark: evals/sec of the evaluation engine.

The SoMa search spends its time in two loops: the stage-2 DLSA loop, which
re-evaluates one fixed plan thousands of times, and the stage-1 LFA loop,
which parses and evaluates a fresh candidate per iteration.  This benchmark
measures both against the seed code path so perf regressions (or wins) show
up in ``benchmarks/results/``:

* ``test_dlsa_eval_throughput`` replays an identical stream of DLSA operator
  moves through the seed evaluator (full recompute per call,
  ``ScheduleEvaluator.evaluate_reference``) and through the incremental
  :class:`PlanEvaluationContext`, asserting the results stay identical and
  the engine clears the 3x speedup bar on the default Fig. 6 subset.
* ``test_batched_move_throughput`` replays an identical stream of candidate
  *moves* (windows against a common base, as the speculative batched engine
  sees them) through the serial incremental path
  (``context.evaluate(move.apply(base))`` per move) and through
  ``evaluate_moves`` — once without and once with the roofline prefilter —
  asserting identical verdicts and a 3x throughput floor for the batched
  engine, and recording deadlock-screen and prune rates.
* ``test_stage1_candidate_throughput`` replays an identical stream of LFA
  operator moves (the stage-1 annealer's walk) through the full reference
  parser and through the segment assembler, asserting bit-identical plans
  and a 2x candidate-throughput floor, and records the segment- and
  fragment-cache hit rates (content-hash fragment keys must out-hit the
  position-sensitive segment cache).
* ``test_search_wall_clock`` times the full two-stage search per cell,
  reports end-to-end evals/sec (SA iterations per second of wall clock),
  and gates the cold gpt2-prefill single-schedule latency at 2x the
  pre-refactor baseline.

Like the other benchmarks, the default grid is the scaled-down Fig. 6
subset; ``REPRO_BENCH_FULL=1`` runs the full paper grid.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import time
from pathlib import Path

import pytest

from benchmarks.common import FULL_MODE, bench_config, fig6_cells
from repro.core.config import SAParams, SoMaConfig
from repro.core.dlsa_stage import DLSA_OPERATORS, DLSAStage, propose_dlsa_move
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.core.lfa_stage import LFA_OPERATORS, initial_lfa
from repro.core.soma import SoMaScheduler
from repro.notation.parser import parse_lfa
from repro.notation.segments import (
    PlanAssembler,
    fragment_cache,
    fragment_cache_stats,
    segment_cache,
)

_MOVES = 120
_SPEEDUP_FLOOR = 3.0
_S1_CANDIDATES = 200
_S1_SPEEDUP_FLOOR = 2.0
_BM_WINDOWS = 20
_BM_WINDOW = 32
_BM_SPEEDUP_FLOOR = 3.0
#: Cold single-schedule wall clock of the gpt2-prefill edge/bs1 cell measured
#: before the offset-indirect representation + pipelined-search PR landed
#: (benchmarks/results/test_search_wall_clock.txt at that revision).
_COLD_BASELINE_S = 50.77
#: Re-baselined with the speculative pipelined path (REPRO_STAGE_PIPELINE=1,
#: REPRO_LFA_BATCH=1): 2.74x best-of-3 measured on a one-core runner, floor
#: at ~88% of measured.  Single samples drift up to ~1.7x slower on busy
#: shared runners, so the gate takes the fastest of ``_COLD_ATTEMPTS`` fresh
#: processes — noise only ever inflates a latency reading, never deflates
#: it, so min-of-N tightens the measurement without weakening the gate.
_COLD_SPEEDUP_FLOOR = 2.4
_COLD_ATTEMPTS = 3
#: The cold child runs the pipelined speculative engine exactly as the
#: serving fan-out grant would configure it for one cold request on a
#: single-core box: stage tasks in-process (no pool — worker IPC only wins
#: wall clock with >=2 free cores), speculation window 1 (the draw-ahead
#: walk with zero rolled-back evaluations).
_COLD_ENV = {"REPRO_STAGE_PIPELINE": "1", "REPRO_LFA_BATCH": "1"}
#: Reduced annealing budget that brings the benchmark base near the regime
#: the real search spends its time in (see _batched_window_stream).
_BM_WARM_CONFIG = SoMaConfig(
    dlsa_sa=SAParams(iterations_per_unit=6.0, max_iterations=4000)
)


def _move_stream(plan, rng: random.Random, count: int):
    """A deterministic stream of DLSA states, as the stage-2 annealer walks:
    each move perturbs the previous state, so consecutive states differ in
    at most one tensor's Living Duration or order position."""
    states = [double_buffer_dlsa(plan)]
    while len(states) < count:
        for operator in DLSA_OPERATORS:
            candidate = operator(plan, states[-1], rng)
            if candidate is not None:
                states.append(candidate)
                break
        else:  # pragma: no cover - both operators degenerate
            states.append(states[-1])
    return states[:count]


def _bench_plan(cell):
    """A representative (moderately fused) plan for one Fig. 6 cell."""
    graph = cell.build_graph()
    accelerator = cell.build_accelerator()
    lfa = initial_lfa(graph, accelerator.core_array.kc_parallel_lanes)
    plan = parse_lfa(graph, lfa)
    return graph, accelerator, plan


@pytest.mark.benchmark(group="search-throughput")
def test_dlsa_eval_throughput(reporter):
    reporter.line("DLSA evaluation throughput: seed full recompute vs incremental engine")
    reporter.line(
        f"{'workload':28s} {'plat':5s} {'bs':>3s} {'tensors':>8s} "
        f"{'seed ev/s':>10s} {'engine ev/s':>12s} {'speedup':>8s}"
    )
    speedups = []
    for cell in fig6_cells():
        graph, accelerator, plan = _bench_plan(cell)
        rng = random.Random(2025)
        states = _move_stream(plan, rng, _MOVES)

        reference = ScheduleEvaluator(accelerator)
        engine = ScheduleEvaluator(accelerator, mapper=reference.mapper)
        context = engine.context(plan)

        # Warm the DLSA-independent state on both paths so the measurement
        # isolates the per-evaluation work (the seed path cached its static
        # costs per plan too).
        reference.evaluate_reference(plan, states[0])
        context.evaluate(states[0])

        start = time.perf_counter()
        reference_results = [reference.evaluate_reference(plan, s) for s in states]
        reference_s = time.perf_counter() - start

        start = time.perf_counter()
        engine_results = [context.evaluate(s) for s in states]
        engine_s = time.perf_counter() - start

        for ref, new in zip(reference_results, engine_results):
            assert new.latency_s == ref.latency_s
            assert new.energy_j == ref.energy_j
            assert new.max_buffer_bytes == ref.max_buffer_bytes
            assert new.feasible == ref.feasible

        seed_rate = len(states) / reference_s
        engine_rate = len(states) / engine_s
        speedup = engine_rate / seed_rate
        speedups.append(speedup)
        reporter.line(
            f"{cell.workload:28s} {cell.platform:5s} {cell.batch:>3d} "
            f"{plan.num_dram_tensors:>8d} {seed_rate:>10.0f} {engine_rate:>12.0f} "
            f"{speedup:>7.2f}x"
        )

    geomean = 1.0
    for value in speedups:
        geomean *= value
    geomean **= 1.0 / len(speedups)
    reporter.line("")
    reporter.line(f"geometric-mean speedup: {geomean:.2f}x (floor {_SPEEDUP_FLOOR:.1f}x)")
    assert geomean >= _SPEEDUP_FLOOR


def _batched_window_stream(graph, accelerator, plan, stage, context, budget, rng):
    """(base, moves, thresholds) windows around an annealed schedule.

    Mirrors what the speculative engine sees during the bulk of a search:
    the base is first annealed with a reduced budget (the walk spends most
    of its iterations on schedules far better than the double-buffer start,
    which is exactly where the roofline prefilter does its pruning), then
    every window's threshold is the base's own cost — the greedy polishing
    phase's acceptance rule — and the base keeps advancing through
    improving candidates.
    """
    from repro.core.lfa_stage import initial_lfa as _initial_lfa

    warm_stage = DLSAStage(stage._evaluator, _BM_WARM_CONFIG)
    lfa = _initial_lfa(graph, accelerator.core_array.kc_parallel_lanes)
    outcome = warm_stage.explore(lfa, plan, double_buffer_dlsa(plan), budget, rng)
    base = outcome.stage_result.encoding.dlsa
    cost = stage._penalised_cost(context.evaluate(base, budget), budget)
    stream = []
    for _ in range(_BM_WINDOWS):
        moves = []
        while len(moves) < _BM_WINDOW:
            move = propose_dlsa_move(plan, base, rng)
            if move is not None:
                moves.append(move)
        stream.append((base, tuple(moves), (cost,) * len(moves)))
        for move in moves:
            candidate = move.apply(base)
            candidate_cost = stage._penalised_cost(context.evaluate(candidate, budget), budget)
            if candidate_cost < cost:
                base = candidate
                cost = candidate_cost
                break
    return stream


@pytest.mark.benchmark(group="search-throughput")
def test_batched_move_throughput(reporter):
    reporter.line(
        "Batched DLSA move throughput: serial incremental engine vs "
        "evaluate_moves (vectorised screen, optional roofline prefilter)"
    )
    reporter.line(
        f"{'workload':28s} {'plat':5s} {'bs':>3s} {'serial ev/s':>11s} "
        f"{'vector ev/s':>11s} {'+prefilter':>11s} {'speedup':>8s} "
        f"{'deadlock':>9s} {'pruned':>7s}"
    )
    speedups = []
    for cell in fig6_cells():
        graph, accelerator, plan = _bench_plan(cell)
        budget = accelerator.gbuf_bytes
        evaluator = ScheduleEvaluator(accelerator)
        stage = DLSAStage(evaluator, bench_config())
        stream = _batched_window_stream(
            graph, accelerator, plan, stage, evaluator.context(plan), budget,
            random.Random(2025),
        )
        total_moves = sum(len(moves) for _base, moves, _ths in stream)

        def serial_pass():
            context = ScheduleEvaluator(accelerator, mapper=evaluator.mapper).context(plan)
            start = time.perf_counter()
            out = [
                context.evaluate(move.apply(base), budget)
                for base, moves, _ths in stream
                for move in moves
            ]
            return time.perf_counter() - start, out

        def batched_pass(prefilter):
            context = ScheduleEvaluator(accelerator, mapper=evaluator.mapper).context(plan)
            bound_cost_fn = stage._bound_cost_fn(context, budget) if prefilter else None
            start = time.perf_counter()
            out = []
            for base, moves, thresholds in stream:
                out.extend(
                    context.evaluate_moves(base, moves, budget, thresholds, bound_cost_fn)
                )
            return time.perf_counter() - start, out, context.cache_stats()

        serial_s, serial_results = serial_pass()
        vector_s, vector_results, _stats = batched_pass(False)
        prefilter_s, _prefilter_results, stats = batched_pass(True)

        for ref, new in zip(serial_results, vector_results):
            assert new.latency_s == ref.latency_s
            assert new.max_buffer_bytes == ref.max_buffer_bytes
            assert new.feasible == ref.feasible
            assert new.reason == ref.reason

        serial_rate = total_moves / serial_s
        vector_rate = total_moves / vector_s
        prefilter_rate = total_moves / prefilter_s
        speedup = max(vector_rate, prefilter_rate) / serial_rate
        speedups.append(speedup)
        reporter.line(
            f"{cell.workload:28s} {cell.platform:5s} {cell.batch:>3d} "
            f"{serial_rate:>11.0f} {vector_rate:>11.0f} {prefilter_rate:>11.0f} "
            f"{speedup:>7.2f}x "
            f"{stats['batch_deadlocks'] / stats['batch_moves']:>8.1%} "
            f"{stats['batch_pruned'] / stats['batch_moves']:>6.1%}"
        )

    geomean = 1.0
    for value in speedups:
        geomean *= value
    geomean **= 1.0 / len(speedups)
    reporter.line("")
    reporter.line(
        f"geometric-mean batched-engine speedup: {geomean:.2f}x "
        f"(floor {_BM_SPEEDUP_FLOOR:.1f}x)"
    )
    assert geomean >= _BM_SPEEDUP_FLOOR


def _lfa_move_stream(graph, accelerator, rng, count):
    """A deterministic stream of LFA operator moves, as stage 1 walks them:
    every move perturbs the current state and feasible candidates are
    accepted, so consecutive states differ in one or two segments."""
    lfa = initial_lfa(graph, accelerator.core_array.kc_parallel_lanes)
    moves = []
    while len(moves) < count:
        operator = rng.choice(LFA_OPERATORS)
        move = operator(lfa, graph, rng)
        if move is None:
            continue
        moves.append(move)
        if parse_lfa(graph, move.lfa).feasible:
            lfa = move.lfa
    return moves


@pytest.mark.benchmark(group="search-throughput")
def test_stage1_candidate_throughput(reporter):
    """Full re-parse vs segment assembly over one LFA operator stream.

    Two segment measurements bracket the anneal's behaviour: the *cold* pass
    starts with empty segment/fragment caches (every candidate still reuses
    its parent's untouched segments through the delta), and the *steady*
    pass replays the stream with warm caches — the regime a long anneal
    lives in, where states are revisited constantly.  The speedup floor is
    asserted on the steady rate; the cold rate is reported for context.
    """
    reporter.line("Stage-1 candidate throughput: full re-parse vs segment assembly")
    reporter.line(
        f"{'workload':28s} {'plat':5s} {'bs':>3s} {'LGs':>4s} {'parse c/s':>10s} "
        f"{'cold c/s':>9s} {'steady c/s':>11s} {'speedup':>8s} {'seg hit':>8s} "
        f"{'frag hit':>9s}"
    )
    speedups = []
    seg_rates = []
    frag_rates = []
    for cell in fig6_cells():
        graph = cell.build_graph()
        accelerator = cell.build_accelerator()
        rng = random.Random(2025)
        # Building the stream warms the per-graph tiling memo, so every timed
        # pass sees the same warm tilings (as it would mid-anneal).
        moves = _lfa_move_stream(graph, accelerator, rng, _S1_CANDIDATES)

        start = time.perf_counter()
        reference_plans = [parse_lfa(graph, move.lfa) for move in moves]
        full_s = time.perf_counter() - start

        # Cold: no segment/fragment entries survive from the stream build
        # (parse_lfa never touches them).
        segment_cache(graph).clear()
        fragment_cache(graph).clear()
        assembler = PlanAssembler(graph)
        start = time.perf_counter()
        assembled_plans = [assembler.assemble(move.lfa, move.delta) for move in moves]
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        steady_plans = [assembler.assemble(move.lfa, move.delta) for move in moves]
        steady_s = time.perf_counter() - start

        for reference, assembled, steady in zip(
            reference_plans[::20], assembled_plans[::20], steady_plans[::20]
        ):
            for candidate in (assembled, steady):
                assert candidate.fingerprint() == reference.fingerprint()
                assert candidate.feasible == reference.feasible
                if reference.feasible:
                    assert candidate.dram_tensors == reference.dram_tensors
                    assert candidate.tiles == reference.tiles
                    assert candidate.onchip_intervals == reference.onchip_intervals

        full_rate = len(moves) / full_s
        cold_rate = len(moves) / cold_s
        steady_rate = len(moves) / steady_s
        speedup = steady_rate / full_rate
        speedups.append(speedup)
        hit_rate = segment_cache(graph).stats()["hit_rate"]
        frag_rate = fragment_cache_stats(graph)["hit_rate"]
        seg_rates.append(hit_rate)
        frag_rates.append(frag_rate)
        reporter.line(
            f"{cell.workload:28s} {cell.platform:5s} {cell.batch:>3d} "
            f"{reference_plans[0].num_lgs:>4d} {full_rate:>10.0f} {cold_rate:>9.0f} "
            f"{steady_rate:>11.0f} {speedup:>7.2f}x {hit_rate:>7.1%} {frag_rate:>8.1%}"
        )

    geomean = 1.0
    for value in speedups:
        geomean *= value
    geomean **= 1.0 / len(speedups)
    reporter.line("")
    mean_seg = sum(seg_rates) / len(seg_rates)
    mean_frag = sum(frag_rates) / len(frag_rates)
    reporter.line(
        f"geometric-mean steady-state speedup: {geomean:.2f}x "
        f"(floor {_S1_SPEEDUP_FLOOR:.1f}x)"
    )
    reporter.line(
        f"mean cache hit rate: segments {mean_seg:.1%}, fragments {mean_frag:.1%} "
        f"(content-hash fragment keys must out-hit position-sensitive segments)"
    )
    assert geomean >= _S1_SPEEDUP_FLOOR
    # Fragments are keyed by segment *content* only, so every re-based copy of
    # a segment the LFA walk shuffles around shares one fragment entry; the
    # fragment hit rate must therefore beat the segment hit rate.
    assert mean_frag > mean_seg


#: Speculation window used by the fan-out benchmark rows (the CI
#: pipeline-parallel job runs the test suites with the same width).
_SPEC_BATCH = 8
#: (label, REPRO_LFA_BATCH, REPRO_ALLOC_WORKERS) rows: the serial stage-1
#: walk, then the speculative batched walk evaluated in-process (w1) and
#: fanned across pool workers (the speculative topology reserves the last
#: worker for stage 2 and spreads the move windows over the rest).
_SPEC_SHAPES = (
    ("serial", 0, 0),
    ("spec w1", _SPEC_BATCH, 0),
    ("spec w2", _SPEC_BATCH, 2),
    ("spec w4", _SPEC_BATCH, 4),
)
_SPEC_CELLS = {("resnet50", 1), ("randwire", 1), ("gpt2-decode", 1)}
#: Geomean wall-clock floor per speculative shape, vs the serial walk.  On
#: a multi-core runner the fan-out rows should clear 1.0x; a single-core
#: runner (the common CI box) pays worker IPC for no parallel win, so the
#: floor only bounds the *overhead* — a shape that falls below it costs
#: more than 5x serial and has regressed beyond any plausible IPC tax.
_SPEC_GEOMEAN_FLOOR = 0.2


@pytest.mark.benchmark(group="search-throughput")
def test_stage1_speculation_wall_clock(reporter, monkeypatch):
    """Speculative stage-1 fan-out: wall clock plus commit/rollback accounting.

    Every cell runs the same pipelined two-stage search four ways (see
    ``_SPEC_SHAPES``).  The speculative shapes must agree bit for bit —
    the draw-ahead protocol commits exactly the move the one-at-a-time
    batched walk would accept, wherever the candidate evaluations run —
    so the table only varies in wall clock and in how much speculation was
    wasted (rolled back) or shipped to the pool.  The asserted geomean
    floor (``_SPEC_GEOMEAN_FLOOR``) bounds the overhead, not the win: on a
    single-core runner the fan-out rows pay worker IPC for no parallel win
    (the cold-latency gate below carries the speedup regression duty); the
    table exists so multi-core runners can see the win and single-core
    ones the overhead, next to the commit/rollback rates.
    """
    from repro.core.buffer_allocator import ALLOC_WORKERS_ENV, PIPELINE_ENV
    from repro.core.lfa_stage import LFA_BATCH_ENV, speculation_stats

    monkeypatch.setenv(PIPELINE_ENV, "1")
    reporter.line(
        "Stage-1 speculation: serial walk vs batched fan-out "
        f"(window {_SPEC_BATCH}, pipelined two-stage search)"
    )
    reporter.line(
        f"{'workload':28s} {'shape':8s} {'wall(s)':>8s} {'vs serial':>10s} "
        f"{'proposed':>9s} {'committed':>10s} {'rolled':>7s} {'pool ev':>8s}"
    )
    ratios: dict[str, list[float]] = {label: [] for label, _b, _w in _SPEC_SHAPES[1:]}
    for cell in fig6_cells():
        if (cell.workload, cell.batch) not in _SPEC_CELLS or cell.platform != "edge":
            continue
        accelerator = cell.build_accelerator()
        runs: dict[str, tuple[float, object, dict]] = {}
        for label, batch, workers in _SPEC_SHAPES:
            if batch:
                monkeypatch.setenv(LFA_BATCH_ENV, str(batch))
            else:
                monkeypatch.delenv(LFA_BATCH_ENV, raising=False)
            if workers >= 2:
                monkeypatch.setenv(ALLOC_WORKERS_ENV, str(workers))
            else:
                monkeypatch.delenv(ALLOC_WORKERS_ENV, raising=False)
            # A fresh graph per run: every shape pays the same cold per-graph
            # memos (tilings, segments, plans), exactly like a cold request.
            graph = cell.build_graph()
            before = speculation_stats(graph)
            start = time.perf_counter()
            result = SoMaScheduler(accelerator, bench_config()).schedule(
                graph, seed=2025
            )
            wall = time.perf_counter() - start
            assert result.evaluation.feasible
            delta = {
                key: value - before.get(key, 0)
                for key, value in speculation_stats(graph).items()
            }
            runs[label] = (wall, result, delta)
            ratio = runs["serial"][0] / wall
            if label != "serial":
                ratios[label].append(ratio)
            reporter.line(
                f"{cell.workload:28s} {label:8s} {wall:>8.2f} "
                f"{ratio:>9.2f}x {delta['proposed']:>9d} {delta['committed']:>10d} "
                f"{delta['rolled_back']:>7d} {delta['pool_evaluations']:>8d}"
            )

        # The tentpole guarantee, asserted on real workloads: widening the
        # window and fanning it across workers never changes the schedule.
        _wall, reference, ref_delta = runs["spec w1"]
        assert ref_delta["committed"] > 0
        for label in ("spec w2", "spec w4"):
            _wall, result, delta = runs[label]
            assert result.history == reference.history
            assert result.best.cost == reference.best.cost
            assert result.evaluation.latency_s == reference.evaluation.latency_s
            assert result.evaluation.energy_j == reference.evaluation.energy_j
            assert (
                result.stage1_buffer_budget_bytes
                == reference.stage1_buffer_budget_bytes
            )
            # The pool rows ship their memo misses to the workers.
            assert delta["pool_evaluations"] > 0

    reporter.line("")
    for label, values in ratios.items():
        geomean = 1.0
        for value in values:
            geomean *= value
        geomean **= 1.0 / len(values)
        reporter.line(f"geometric-mean wall-clock ratio {label}: {geomean:.2f}x vs serial")
        assert geomean >= _SPEC_GEOMEAN_FLOOR


_COLD_CHILD_SCRIPT = """
import time

from benchmarks.common import bench_config, fig6_cells
from repro.core.soma import SoMaScheduler

cell = next(
    cell
    for cell in fig6_cells()
    if (cell.workload, cell.platform, cell.batch) == ("gpt2-prefill", "edge", 1)
)
graph = cell.build_graph()
accelerator = cell.build_accelerator()
scheduler = SoMaScheduler(accelerator, bench_config())
start = time.perf_counter()
result = scheduler.schedule(graph, seed=2025)
wall = time.perf_counter() - start
assert result.evaluation.feasible
print(f"COLD_WALL {wall:.4f}")
"""


def _isolated_cold_wall() -> float:
    """Cold gpt2-prefill single-schedule wall clock, in a fresh process.

    A fresh interpreter is what a first serving request actually pays, and
    it keeps the gate independent of whatever memory/caches the test
    session accumulated before this benchmark ran (in-suite timings drift
    ~25% slower on a busy session).  The child runs the speculative
    pipelined configuration (``_COLD_ENV``); ``_COLD_ATTEMPTS`` fresh
    processes run back to back and the fastest wins (see the floor notes).
    """
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env.update(_COLD_ENV)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(repo_root / "src"), str(repo_root)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    walls = []
    for _attempt in range(_COLD_ATTEMPTS):
        completed = subprocess.run(
            [sys.executable, "-c", _COLD_CHILD_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=repo_root,
            timeout=600,
        )
        assert completed.returncode == 0, completed.stderr
        for line in completed.stdout.splitlines():
            if line.startswith("COLD_WALL "):
                walls.append(float(line.split()[1]))
                break
        else:
            raise AssertionError(
                f"no COLD_WALL line in child output: {completed.stdout!r}"
            )
    return min(walls)


@pytest.mark.benchmark(group="search-throughput")
def test_search_wall_clock(reporter):
    """Full two-stage search wall clock, plus the cold-latency gate.

    Every cell builds a fresh graph, so all per-graph memos (tilings,
    segments, fragments, plans) start empty: each row is a cold
    single-request schedule, timed in-session for context.  The regression
    gate re-times the gpt2-prefill edge/bs1 cell in *fresh processes*
    running the speculative pipelined engine (see
    :func:`_isolated_cold_wall`) and requires at least
    ``_COLD_SPEEDUP_FLOOR``x over the pre-refactor baseline recorded in
    ``_COLD_BASELINE_S`` (default subset budgets only; the full paper grid
    uses different SA budgets).
    """
    reporter.line("End-to-end search wall clock (SoMa two-stage, default budgets)")
    reporter.line(
        f"{'workload':28s} {'plat':5s} {'bs':>3s} {'wall(s)':>8s} "
        f"{'iters':>7s} {'evals/s':>9s} {'latency(ms)':>12s}"
    )
    for cell in fig6_cells():
        graph = cell.build_graph()
        accelerator = cell.build_accelerator()
        scheduler = SoMaScheduler(accelerator, bench_config())
        start = time.perf_counter()
        result = scheduler.schedule(graph, seed=2025)
        wall = time.perf_counter() - start
        iterations = result.stage1.iterations + result.stage2.iterations
        reporter.line(
            f"{cell.workload:28s} {cell.platform:5s} {cell.batch:>3d} {wall:>8.2f} "
            f"{iterations:>7d} {iterations / wall:>9.0f} "
            f"{result.evaluation.latency_s * 1e3:>12.3f}"
        )
        assert result.evaluation.feasible
    if not FULL_MODE:
        cold_wall = _isolated_cold_wall()
        speedup = _COLD_BASELINE_S / cold_wall
        reporter.line("")
        reporter.line(
            f"cold single-schedule latency (gpt2-prefill edge bs1, "
            f"pipelined speculative engine, best of {_COLD_ATTEMPTS} fresh "
            f"processes): {cold_wall:.2f}s vs {_COLD_BASELINE_S:.2f}s "
            f"baseline = {speedup:.2f}x (floor {_COLD_SPEEDUP_FLOOR:.1f}x)"
        )
        assert speedup >= _COLD_SPEEDUP_FLOOR
