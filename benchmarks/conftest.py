"""Benchmark fixtures: a reporter that survives pytest's output capture."""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


class BenchReporter:
    """Writes result tables both to the terminal and to benchmarks/results/."""

    def __init__(self, terminal, name: str) -> None:
        self._terminal = terminal
        self._path = RESULTS_DIR / f"{name}.txt"
        RESULTS_DIR.mkdir(exist_ok=True)
        self._lines: list[str] = []

    def line(self, text: str = "") -> None:
        """Emit one line of the report."""
        self._lines.append(text)
        if self._terminal is not None:
            self._terminal.write_line(text)
        else:  # pragma: no cover - fallback when no terminal reporter exists
            print(text)

    def flush(self) -> None:
        """Persist the collected lines to the results directory."""
        self._path.write_text("\n".join(self._lines) + "\n")


@pytest.fixture
def reporter(request):
    """A :class:`BenchReporter` named after the requesting test."""
    terminal = request.config.pluginmanager.get_plugin("terminalreporter")
    bench_reporter = BenchReporter(terminal, request.node.name)
    bench_reporter.line("")
    yield bench_reporter
    bench_reporter.flush()
