"""Sec. VI-B LLM observations: decode utilisation vs batch size.

The paper reports that (1) the decode stage leaves almost no room for DRAM
scheduling optimisation because it is bandwidth-bound, and (2) decode
utilisation grows sub-linearly with the batch size (0.66% / 2.03% / 4.26% /
5.84% for GPT-2-Small at batches 1/4/16/64) because the KV cache grows with
the batch.  This benchmark regenerates the utilisation-vs-batch series.
"""

from __future__ import annotations

import pytest

from benchmarks.common import FULL_MODE, bench_config
from repro.baselines.cocco import CoccoScheduler
from repro.core.core_array import CoreArrayMapper
from repro.core.soma import SoMaScheduler
from repro.hardware.accelerator import edge_accelerator
from repro.workloads.registry import build_workload

_BATCHES = [1, 4, 16, 64] if FULL_MODE else [1, 4, 16]
_CONTEXT = 512


def _run():
    accelerator = edge_accelerator()
    config = bench_config()
    mapper = CoreArrayMapper(accelerator)
    rows = []
    for batch in _BATCHES:
        graph = build_workload(
            "gpt2-decode", batch=batch, variant="small", context_len=_CONTEXT
        )
        soma = SoMaScheduler(accelerator, config, mapper=mapper).schedule(graph)
        cocco = CoccoScheduler(accelerator, config, mapper=mapper).schedule(graph)
        rows.append(
            {
                "batch": batch,
                "soma_util": soma.evaluation.compute_utilization(accelerator),
                "cocco_util": cocco.evaluation.compute_utilization(accelerator),
                "soma_latency_ms": soma.evaluation.latency_s * 1e3,
                "dram_busy": soma.evaluation.dram_utilization(),
                "weights_mb": graph.total_weight_bytes / 1e6,
            }
        )
    return rows


@pytest.mark.benchmark(group="llm-decode")
def test_decode_utilisation_vs_batch(benchmark, reporter):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    reporter.line("GPT-2-Small decode on the edge platform (context 512)")
    reporter.line(
        f"{'batch':>6s} {'SoMa util':>10s} {'Cocco util':>11s} {'latency(ms)':>12s} "
        f"{'DRAM busy':>10s} {'weights+KV (MB)':>16s}"
    )
    for row in rows:
        reporter.line(
            f"{row['batch']:>6d} {row['soma_util'] * 100:>9.2f}% {row['cocco_util'] * 100:>10.2f}% "
            f"{row['soma_latency_ms']:>12.3f} {row['dram_busy'] * 100:>9.1f}% "
            f"{row['weights_mb']:>16.1f}"
        )
    reporter.line("")
    reporter.line("paper (GPT-2-Small decode utilisation): 0.66% / 2.03% / 4.26% / 5.84% at batch 1/4/16/64")

    # Observation 1: decode is bandwidth bound - utilisation stays very low
    # and the DRAM channel is busy most of the time.  The busy floor leaves
    # headroom for seed-to-seed variance of the annealer at the reduced
    # bench-scale search budget (the largest batch hovers around 0.65-0.80
    # depending on the trajectory; the observation itself is qualitative).
    assert all(row["soma_util"] < 0.2 for row in rows)
    assert all(row["dram_busy"] > 0.6 for row in rows)
    # Observation 2: utilisation grows with the batch but sub-linearly.
    utils = [row["soma_util"] for row in rows]
    assert all(b >= a for a, b in zip(utils, utils[1:]))
    assert utils[-1] < utils[0] * (_BATCHES[-1] / _BATCHES[0])
    # Observation 3: DRAM scheduling has little headroom in decode - SoMa and
    # Cocco land close together.
    for row in rows:
        assert row["soma_util"] >= row["cocco_util"] * 0.8
