"""Fig. 6 + Sec. VI-B headline numbers: overall Cocco vs SoMa comparison.

For every cell of the grid the benchmark prints the series plotted in Fig. 6
(normalised core / DRAM energy, computing-resource utilisation, theoretical
maximum utilisation, average buffer usage) for Cocco, Ours_1 (after stage 1)
and Ours_2 (after stage 2), followed by the aggregate statistics the paper
quotes in the abstract and Sec. VI-B (average speedup, energy reduction, gap
to the bound).
"""

from __future__ import annotations

import pytest

from benchmarks.common import comparison_rows, fig6_cells
from repro.analysis.comparison import summarize


def _run_all():
    cells = fig6_cells()
    # Batch prefetch: honours REPRO_WORKERS for parallel cell execution and
    # fills the session row cache the other benchmarks reuse.
    return list(zip(cells, comparison_rows(cells)))


@pytest.mark.benchmark(group="fig6")
def test_fig6_overall_comparison(benchmark, reporter):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    reporter.line("Fig. 6 - overall comparison (Cocco vs Ours_1 vs Ours_2)")
    header = (
        f"{'workload':28s} {'plat':5s} {'bs':>3s} {'scheme':7s} "
        f"{'lat(ms)':>9s} {'E_core':>7s} {'E_dram':>7s} {'util':>6s} {'bound':>6s} {'buf(MB)':>8s}"
    )
    reporter.line(header)
    rows = []
    for cell, row in results:
        rows.append(row)
        for label, evaluation in (
            ("Cocco", row.cocco),
            ("Ours_1", row.soma_stage1),
            ("Ours_2", row.soma_stage2),
        ):
            core_norm, dram_norm = row.normalized_energy(evaluation)
            reporter.line(
                f"{cell.workload:28s} {cell.platform:5s} {cell.batch:>3d} {label:7s} "
                f"{evaluation.latency_s * 1e3:>9.3f} {core_norm:>7.3f} {dram_norm:>7.3f} "
                f"{row.utilization(evaluation):>6.3f} {row.theoretical_max_utilization:>6.3f} "
                f"{evaluation.avg_buffer_bytes / 1e6:>8.2f}"
            )

    summary = summarize(rows)
    reporter.line("")
    reporter.line("Sec. VI-B aggregate statistics (paper: 2.11x speedup, -37.3% energy, 3.1% gap)")
    for line in summary.describe().splitlines():
        reporter.line("  " + line)

    # Shape checks: SoMa must not lose to Cocco on average (with the reduced
    # default search budget we allow a small tolerance), stage 2 must never be
    # worse than stage 1, and SoMa's schemes must not be finer grained than
    # Cocco's on average.
    assert summary.avg_speedup_total >= 0.97
    assert summary.avg_speedup_stage2 >= 0.999
    assert summary.avg_soma_tiles <= summary.avg_cocco_tiles * 1.05
