"""Ablations of SoMa's design choices (Sec. V-A / V-B rationale).

The paper argues for (1) a second, DLSA-only stage on top of the LFA stage,
and (2) an outer Buffer Allocator that re-splits the GBUF between the two
stages.  This benchmark quantifies both choices on ResNet-50 (edge, batch 1):

* ``stage1-only``   - the LFA stage with the double-buffer DLSA (Ours_1);
* ``two-stage``     - the full SoMa flow but a single allocator iteration;
* ``with-allocator``- the full SoMa flow with the Buffer Allocator loop.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.common import bench_config
from repro.core.core_array import CoreArrayMapper
from repro.core.soma import SoMaScheduler
from repro.hardware.accelerator import edge_accelerator
from repro.workloads.registry import build_workload


def _run():
    accelerator = edge_accelerator()
    graph = build_workload("resnet50", batch=1)
    mapper = CoreArrayMapper(accelerator)

    base_config = bench_config()
    single_iteration = replace(base_config, max_allocator_iterations=1, allocator_patience=1)
    with_allocator = replace(base_config, max_allocator_iterations=3, allocator_patience=2)

    two_stage = SoMaScheduler(accelerator, single_iteration, mapper=mapper).schedule(graph)
    allocator = SoMaScheduler(accelerator, with_allocator, mapper=mapper).schedule(graph)

    return {
        "stage1-only": two_stage.stage1.evaluation,
        "two-stage": two_stage.stage2.evaluation,
        "with-allocator": allocator.evaluation,
        "allocator_iterations": allocator.allocator_iterations,
        "accelerator": accelerator,
    }


@pytest.mark.benchmark(group="ablation")
def test_two_stage_and_buffer_allocator_ablation(benchmark, reporter):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    accelerator = results["accelerator"]

    reporter.line("Ablation on ResNet-50 (edge, batch 1)")
    reporter.line(f"{'variant':16s} {'latency(ms)':>12s} {'energy(mJ)':>11s} {'EDP':>12s} {'util':>6s}")
    for label in ("stage1-only", "two-stage", "with-allocator"):
        evaluation = results[label]
        reporter.line(
            f"{label:16s} {evaluation.latency_s * 1e3:>12.3f} {evaluation.energy_j * 1e3:>11.3f} "
            f"{evaluation.objective():>12.3e} {evaluation.compute_utilization(accelerator):>6.3f}"
        )
    reporter.line(f"buffer-allocator iterations executed: {results['allocator_iterations']}")

    # The second stage must not be worse than stage 1 (it starts from it), and
    # the allocator must not be worse than a single iteration of the same flow.
    assert results["two-stage"].latency_s <= results["stage1-only"].latency_s * 1.001
    assert results["with-allocator"].objective() <= results["two-stage"].objective() * 1.05
