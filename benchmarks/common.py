"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Because the
original experiments run a C++ engine for two days on a 192-core server, the
default Python benchmark grid is a scaled-down (but structurally identical)
subset; set the environment variable ``REPRO_BENCH_FULL=1`` to run the full
paper grid (all six workloads, both platforms, batch sizes 1-64 and the
published SA budgets) if you have the time budget for it.

Results are cached per (workload, platform, batch) within one pytest session
so the Sec. VI-B statistics benchmark can reuse the Fig. 6 runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import ComparisonRow, compare_workload
from repro.core.config import SAParams, SoMaConfig
from repro.core.core_array import CoreArrayMapper
from repro.core.knobs import read_flag
from repro.hardware.accelerator import AcceleratorConfig, cloud_accelerator, edge_accelerator
from repro.workloads.registry import build_workload

FULL_MODE = read_flag("REPRO_BENCH_FULL", default=False)


def bench_config(seed: int = 2025) -> SoMaConfig:
    """Search budget used by the benchmark harness."""
    if FULL_MODE:
        return SoMaConfig.paper().with_seed(seed)
    return SoMaConfig(
        lfa_sa=SAParams(iterations_per_unit=12.0, max_iterations=1100, initial_temperature=0.03),
        dlsa_sa=SAParams(iterations_per_unit=20.0, max_iterations=4000),
        max_allocator_iterations=2,
        allocator_patience=1,
        seed=seed,
    )


def light_config(seed: int = 2025) -> SoMaConfig:
    """Smaller budget for sweeps with many design points (Fig. 7)."""
    if FULL_MODE:
        return SoMaConfig.paper().with_seed(seed)
    return SoMaConfig(
        lfa_sa=SAParams(iterations_per_unit=6.0, max_iterations=450, initial_temperature=0.03),
        dlsa_sa=SAParams(iterations_per_unit=10.0, max_iterations=2500),
        max_allocator_iterations=1,
        allocator_patience=1,
        seed=seed,
    )


@dataclass(frozen=True)
class Fig6Cell:
    """One (workload, platform, batch) cell of Fig. 6."""

    workload: str
    platform: str
    batch: int
    workload_kwargs: tuple = ()

    @property
    def key(self) -> tuple:
        return (self.workload, self.platform, self.batch, self.workload_kwargs)

    def build_graph(self):
        return build_workload(self.workload, batch=self.batch, **dict(self.workload_kwargs))

    def build_accelerator(self) -> AcceleratorConfig:
        return edge_accelerator() if self.platform == "edge" else cloud_accelerator()


def fig6_cells() -> list[Fig6Cell]:
    """The Fig. 6 grid: a representative default subset, or the full grid."""
    if FULL_MODE:
        cells = []
        for platform in ("edge", "cloud"):
            gpt_variant = "small" if platform == "edge" else "xl"
            seq = 512 if platform == "edge" else 1024
            for batch in (1, 4, 16, 64):
                cells.extend(
                    [
                        Fig6Cell("resnet50", platform, batch),
                        Fig6Cell("resnet101", platform, batch),
                        Fig6Cell("inception_resnet_v1", platform, batch),
                        Fig6Cell("randwire", platform, batch),
                        Fig6Cell(
                            "gpt2-prefill",
                            platform,
                            batch,
                            (("variant", gpt_variant), ("seq_len", seq)),
                        ),
                        Fig6Cell(
                            "gpt2-decode",
                            platform,
                            batch,
                            (("variant", gpt_variant), ("context_len", seq)),
                        ),
                    ]
                )
        return cells
    return [
        Fig6Cell("resnet50", "edge", 1),
        Fig6Cell("resnet50", "edge", 4),
        Fig6Cell("randwire", "edge", 1),
        Fig6Cell("gpt2-prefill", "edge", 1, (("variant", "small"), ("seq_len", 256))),
        Fig6Cell("gpt2-decode", "edge", 1, (("variant", "small"), ("context_len", 512))),
        Fig6Cell("gpt2-decode", "edge", 4, (("variant", "small"), ("context_len", 512))),
    ]


_ROW_CACHE: dict[tuple, ComparisonRow] = {}
_MAPPER_CACHE: dict[str, CoreArrayMapper] = {}


def comparison_row(cell: Fig6Cell, seed: int = 2025) -> ComparisonRow:
    """Run (or reuse) the Cocco-vs-SoMa comparison for one Fig. 6 cell."""
    key = cell.key + (seed,)
    if key in _ROW_CACHE:
        return _ROW_CACHE[key]
    accelerator = cell.build_accelerator()
    mapper = _MAPPER_CACHE.setdefault(accelerator.name, CoreArrayMapper(accelerator))
    row = compare_workload(
        cell.build_graph(),
        accelerator,
        config=bench_config(seed),
        seed=seed,
        mapper=mapper,
    )
    _ROW_CACHE[key] = row
    return row


def comparison_rows(cells: list[Fig6Cell], seed: int = 2025) -> list[ComparisonRow]:
    """Comparison rows for many cells, fanned across ``REPRO_WORKERS`` workers.

    Cells already in the session cache are reused; the rest run through
    :class:`~repro.experiments.parallel.ParallelRunner` (serial by default),
    with results identical to per-cell :func:`comparison_row` calls because
    every cell keeps the same explicit seed.
    """
    from repro.analysis.comparison import ComparisonTask, compare_cells

    missing = [cell for cell in cells if cell.key + (seed,) not in _ROW_CACHE]
    if missing:
        tasks = [
            ComparisonTask(
                workload=cell.workload,
                platform=cell.platform,
                batch=cell.batch,
                workload_kwargs=cell.workload_kwargs,
                config=bench_config(seed),
                seed=seed,
            )
            for cell in missing
        ]
        for cell, row in zip(missing, compare_cells(tasks)):
            _ROW_CACHE[cell.key + (seed,)] = row
    return [_ROW_CACHE[cell.key + (seed,)] for cell in cells]
