"""Sec. VI-B1 statistics: stage-1 structural differences between Cocco and SoMa.

The paper attributes stage 1's gains to coarser tiles and more aggressive
fusion: on average 751 computing tiles per network for SoMa vs 7962 for
Cocco, 2.5 LGs vs 13.0, and 3.9 FLGs per network, together with a 34.8% /
44.3% reduction in Core Array / DRAM energy.  This benchmark reuses the
Fig. 6 runs and prints exactly those statistics for the benchmark grid.
"""

from __future__ import annotations

import pytest

from benchmarks.common import comparison_row, fig6_cells
from repro.analysis.metrics import arithmetic_mean, percentage_reduction


def _collect():
    return [(cell, comparison_row(cell)) for cell in fig6_cells()]


@pytest.mark.benchmark(group="stage-stats")
def test_stage1_structure_statistics(benchmark, reporter):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    reporter.line("Sec. VI-B1 - stage-1 structural statistics per network")
    reporter.line(
        f"{'workload':28s} {'bs':>3s} {'cocco tiles':>12s} {'soma tiles':>11s} "
        f"{'cocco LGs':>10s} {'soma LGs':>9s} {'soma FLGs':>10s}"
    )
    for cell, row in results:
        reporter.line(
            f"{cell.workload:28s} {cell.batch:>3d} {row.cocco.num_tiles:>12d} "
            f"{row.soma_stage1.num_tiles:>11d} {row.cocco.num_lgs:>10d} "
            f"{row.soma_stage1.num_lgs:>9d} {row.soma_stage1.num_flgs:>10d}"
        )

    rows = [row for _, row in results]
    core_reduction = arithmetic_mean(
        [percentage_reduction(r.cocco.core_energy_j, r.soma_stage1.core_energy_j) for r in rows]
    )
    dram_reduction = arithmetic_mean(
        [percentage_reduction(r.cocco.dram_energy_j, r.soma_stage1.dram_energy_j) for r in rows]
    )
    reporter.line("")
    reporter.line(
        f"average tiles per network : Cocco {arithmetic_mean([r.cocco.num_tiles for r in rows]):.0f} "
        f"vs SoMa {arithmetic_mean([r.soma_stage1.num_tiles for r in rows]):.0f} "
        f"(paper: 7962 vs 751)"
    )
    reporter.line(
        f"average LGs per network   : Cocco {arithmetic_mean([r.cocco.num_lgs for r in rows]):.1f} "
        f"vs SoMa {arithmetic_mean([r.soma_stage1.num_lgs for r in rows]):.1f} (paper: 13.0 vs 2.5)"
    )
    reporter.line(
        f"average FLGs per network  : SoMa {arithmetic_mean([r.soma_stage1.num_flgs for r in rows]):.1f} "
        f"(paper: 3.9)"
    )
    reporter.line(
        f"stage-1 Core Array energy reduction vs Cocco: {core_reduction:.1f}% (paper: 34.8%)"
    )
    reporter.line(
        f"stage-1 DRAM energy reduction vs Cocco      : {dram_reduction:.1f}% (paper: 44.3%)"
    )

    assert arithmetic_mean([r.soma_stage1.num_tiles for r in rows]) <= arithmetic_mean(
        [r.cocco.num_tiles for r in rows]
    ) * 1.05
    assert arithmetic_mean([r.soma_stage1.num_lgs for r in rows]) <= arithmetic_mean(
        [r.cocco.num_lgs for r in rows]
    ) * 1.2
